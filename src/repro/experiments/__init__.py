"""Experiment drivers: one module per table/figure of the paper.

Every published table and figure has a regenerator here (DESIGN.md §4):

========  =============================================  ====================
Artifact  Paper content                                  Driver
========  =============================================  ====================
Table 1   per-property model counts ± symmetry breaking  ``table1``
Table 2   6 models × split ratios, PartialOrder, symbr   ``classification``
Table 3   DT: test-set vs whole-space (φ ∧ symbr)        ``generalization``
Table 4   as Table 2 without symmetry breaking           ``classification``
Table 5   as Table 3 without symmetry breaking           ``generalization``
Table 6   train symbr / evaluate full space              ``generalization``
Table 7   train full / evaluate symbr space              ``generalization``
Table 8   DiffMC between two trees                       ``table8``
Table 9   class-ratio sweep, traditional vs MCML         ``table9``
Figure 1  Alloy spec for equivalence relations           ``figures``
Figure 2  the 5 equivalence relations at scope 4         ``figures``
========  =============================================  ====================

Scopes default to reduced values that run in seconds on a laptop
(EXPERIMENTS.md records paper-vs-measured); the CLI exposes every knob.
"""

from repro.experiments.config import ExperimentConfig, make_counter
from repro.experiments.classification import classification_table
from repro.experiments.generalization import generalization_table
from repro.experiments.figures import figure1, figure2

# NOTE: the table1/table8/table9 driver *functions* are deliberately not
# re-exported here — doing so would shadow the submodules of the same name
# on the package object.  Use e.g. ``repro.experiments.table1.table1(...)``.

__all__ = [
    "ExperimentConfig",
    "classification_table",
    "figure1",
    "figure2",
    "generalization_table",
    "make_counter",
]
