"""Table 8: quantifying the difference between two decision-tree models.

Per property, two trees are trained on the same data with different
hyper-parameters (the paper's setup); DiffMC reports the whole-space
TT/TF/FT/FF counts and the diff percentage — all close to zero in the paper,
the "rigorous model-replacement check" use case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.diffmc import DiffMCResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.render import render_table, sci
from repro.spec.symmetry import SymmetryBreaking

#: The two hyper-parameter settings the compared trees use.
FIRST_TREE_PARAMS: dict = {}
SECOND_TREE_PARAMS: dict = {"max_depth": 8, "min_samples_leaf": 3}


@dataclass(frozen=True)
class Table8Row:
    property_name: str
    scope: int
    result: DiffMCResult


def table8(
    config: ExperimentConfig | None = None,
    symmetry_breaking: bool = False,
    session=None,
) -> list[Table8Row]:
    """Compute Table 8 through one session (built from ``config`` if absent).

    DiffMC's four region-overlap CNFs are auxiliary-free, so every
    registered backend can count them — the config backend is used
    verbatim.
    """
    config = config or ExperimentConfig()
    owned = session is None
    if owned:
        session = config.session()
    try:
        rows: list[Table8Row] = []
        for prop in config.selected_properties():
            scope = config.scope_for(prop)
            dataset = session.pipeline.make_dataset(
                prop,
                scope,
                symmetry=SymmetryBreaking() if symmetry_breaking else None,
                max_positives=config.max_positives,
            )
            train, _ = dataset.split(0.75, rng=config.seed)
            first = session.pipeline.train("DT", train, **FIRST_TREE_PARAMS)
            second = session.pipeline.train("DT", train, **SECOND_TREE_PARAMS)
            rows.append(Table8Row(prop.name, scope, session.diffmc(first, second)))
    finally:
        if owned:
            # Release the engine-owned worker pool and flush the disk stores.
            session.close()
    return rows


def render(rows: list[Table8Row]) -> str:
    body = [
        [
            r.property_name,
            sci(r.result.tt), sci(r.result.tf), sci(r.result.ft), sci(r.result.ff),
            f"{100 * r.result.diff:.2f}",
            round(r.result.elapsed_seconds, 1),
        ]
        for r in rows
    ]
    return render_table(
        ["Subject", "TT", "TF", "FT", "FF", "Diff[%]", "Time[s]"],
        body,
        title="Table 8: evaluating differences between decision tree models",
    )
