"""Tables 2 and 4: test-set performance of all six models across splits.

Table 2 uses datasets generated with (partial) symmetry breaking, Table 4
without; both show one property (PartialOrder in the paper, configurable
here) across training:test ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ExperimentConfig, PRINTED_RATIOS
from repro.experiments.render import render_table
from repro.ml.metrics import ConfusionCounts
from repro.spec.properties import get_property
from repro.spec.symmetry import SymmetryBreaking


@dataclass(frozen=True)
class ClassificationRow:
    ratio: str  # e.g. "75:25"
    model: str
    counts: ConfusionCounts

    @property
    def metrics(self) -> tuple[float, float, float, float]:
        c = self.counts
        return (c.accuracy, c.precision, c.recall, c.f1)


def _ratio_label(train_fraction: float) -> str:
    train = round(train_fraction * 100)
    return f"{train}:{100 - train}"


def classification_table(
    config: ExperimentConfig | None = None,
    property_name: str = "PartialOrder",
    symmetry_breaking: bool = True,
    ratios: tuple[float, ...] = PRINTED_RATIOS,
    models: tuple[str, ...] = ("DT", "RFT", "GBDT", "ABT", "SVM", "MLP"),
    session=None,
) -> list[ClassificationRow]:
    """Compute Table 2 (``symmetry_breaking=True``) or Table 4 (False).

    No model counting happens here, but running through the (optional)
    shared session keeps dataset generation and training wired the same
    way as every other driver.
    """
    config = config or ExperimentConfig()
    prop = get_property(property_name)
    # Classification tables involve no model counting, so they can afford a
    # larger scope than the whole-space tables — more positives means the
    # 1:99 split still trains on a usable sample, as in the paper.
    scope = config.scope if config.scope is not None else max(prop.repro_scope, 5)
    symmetry = SymmetryBreaking("adjacent") if symmetry_breaking else None

    owned = session is None
    if owned:
        session = config.session()
    try:
        pipeline = session.pipeline
        dataset = pipeline.make_dataset(
            prop, scope, symmetry=symmetry, max_positives=config.max_positives
        )

        rows: list[ClassificationRow] = []
        for train_fraction in ratios:
            for model_name in models:
                result = pipeline.run(
                    prop,
                    scope,
                    model_name=model_name,
                    train_fraction=train_fraction,
                    dataset=dataset,
                    whole_space=False,
                    **config.model_params.get(model_name, {}),
                )
                rows.append(
                    ClassificationRow(
                        ratio=_ratio_label(train_fraction),
                        model=model_name,
                        counts=result.test_counts,
                    )
                )
        return rows
    finally:
        if owned:
            session.close()


def render(rows: list[ClassificationRow], symmetry_breaking: bool = True) -> str:
    which = "Table 2" if symmetry_breaking else "Table 4"
    mode = "with" if symmetry_breaking else "without"
    body = [
        [r.ratio, r.model, *r.metrics]
        for r in rows
    ]
    return render_table(
        ["Ratio", "Model", "Accuracy", "Precision", "Recall", "F1-score"],
        body,
        title=f"{which}: classification results on the test set ({mode} symmetry breaking)",
    )
