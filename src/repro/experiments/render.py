"""Plain-text table rendering in the style of the paper's tables."""

from __future__ import annotations

from collections.abc import Sequence


def sci(value: int | float) -> str:
    """Scientific notation as printed in Table 8 (e.g. ``7.86E+05``)."""
    if value == 0:
        return "0"
    return f"{float(value):.2E}"


def fmt(value, decimals: int = 4) -> str:
    """Uniform cell formatting: floats to fixed decimals, rest as str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    decimals: int = 4,
) -> str:
    """Monospace table with aligned columns."""
    cells = [[fmt(v, decimals) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_matrix(bits: Sequence[int], n: int) -> str:
    """An adjacency matrix as an ASCII grid (for Figure 2)."""
    lines = []
    for i in range(n):
        row = "".join("1" if bits[i * n + j] else "." for j in range(n))
        lines.append(row)
    return "\n".join(lines)
