"""Command-line entry point: ``mcml <artifact> [options]``.

Examples::

    mcml figure2
    mcml table1
    mcml table1 --paper-scopes          # analytic verification at paper scopes
    mcml table3 --properties Reflexive PartialOrder --scope 4
    mcml table9
    mcml all                            # every artifact, reduced scopes
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import classification, figures, generalization
from repro.experiments import table1 as table1_mod
from repro.experiments import table8 as table8_mod
from repro.experiments import table9 as table9_mod
from repro.experiments.config import ExperimentConfig
from repro.spec.properties import property_names

ARTIFACTS = (
    "table1", "table2", "table3", "table4", "table5",
    "table6", "table7", "table8", "table9", "figure1", "figure2", "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mcml",
        description="Regenerate the tables and figures of the MCML paper (PLDI 2020).",
    )
    parser.add_argument("artifact", choices=ARTIFACTS, help="which artifact to regenerate")
    parser.add_argument(
        "--properties",
        nargs="+",
        metavar="NAME",
        default=None,
        help=f"subset of properties (default: all 16); choices: {', '.join(property_names())}",
    )
    parser.add_argument(
        "--scope", type=int, default=None, help="override the scope for every property"
    )
    parser.add_argument(
        "--counter",
        choices=("exact", "approx", "brute"),
        default="exact",
        help="model-counting backend for whole-space metrics (default: exact)",
    )
    parser.add_argument(
        "--accmc-mode",
        choices=("product", "derived"),
        default="derived",
        help="AccMC construction (product = the paper's four counting problems)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--train-fraction", type=float, default=0.10,
        help="training fraction for the generalization tables (default 0.10)",
    )
    parser.add_argument(
        "--max-positives", type=int, default=5000,
        help="cap on bounded-exhaustive positive sets (default 5000)",
    )
    parser.add_argument(
        "--paper-scopes", action="store_true",
        help="table1 only: report at paper scopes using closed forms",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="processes to fan cold counting batches out over "
        "(default 1; 0 = one per core)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist model counts to DIR so re-runs skip counting (default: off)",
    )
    parser.add_argument(
        "--component-cache-mb", type=float, default=512.0, metavar="MB",
        help="budget of the cross-call component cache shared by all "
        "counting problems of a run (default 512; 0 disables sharing)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    kwargs = dict(
        scope=args.scope,
        counter=args.counter,
        accmc_mode=args.accmc_mode,
        seed=args.seed,
        train_fraction=args.train_fraction,
        max_positives=args.max_positives,
        workers=args.workers,
        cache_dir=args.cache_dir,
        component_cache_mb=args.component_cache_mb,
    )
    if args.properties:
        kwargs["properties"] = tuple(args.properties)
    return ExperimentConfig(**kwargs)


def run_artifact(artifact: str, config: ExperimentConfig, paper_scopes: bool = False) -> str:
    if artifact == "table1":
        return table1_mod.render(table1_mod.table1(config, paper_scopes=paper_scopes))
    if artifact in ("table2", "table4"):
        symbr = artifact == "table2"
        rows = classification.classification_table(config, symmetry_breaking=symbr)
        return classification.render(rows, symmetry_breaking=symbr)
    if artifact in ("table3", "table5", "table6", "table7"):
        number = int(artifact[-1])
        return generalization.render(
            generalization.generalization_table(number, config), number
        )
    if artifact == "table8":
        return table8_mod.render(table8_mod.table8(config))
    if artifact == "table9":
        return table9_mod.render(table9_mod.table9(config))
    if artifact == "figure1":
        result = figures.figure1()
        return (
            "Figure 1: Alloy specification\n"
            + result.source
            + f"\nparsed predicates: {', '.join(result.predicates)}"
            + f"\ncommand {result.run_label}: scope {result.run_scope} -> CNF with "
            + f"{result.primary_vars} primary vars, {result.total_vars} total vars, "
            + f"{result.clauses} clauses"
        )
    if artifact == "figure2":
        solutions = figures.figure2()
        return figures.render_figure2(solutions)
    raise ValueError(f"unknown artifact {artifact!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    artifacts = (
        [a for a in ARTIFACTS if a != "all"] if args.artifact == "all" else [args.artifact]
    )
    for artifact in artifacts:
        print(run_artifact(artifact, config, paper_scopes=args.paper_scopes))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
