"""Command-line entry point: ``mcml <artifact> [options]``.

Examples::

    mcml figure2
    mcml table1
    mcml table1 --paper-scopes          # analytic verification at paper scopes
    mcml table3 --properties Reflexive PartialOrder --scope 4
    mcml table9 --backend brute
    mcml --list-backends                # registered counting backends
    mcml all                            # every artifact, reduced scopes

Every counting artifact runs through one :class:`repro.core.session.MCMLSession`
built from the parsed configuration: backend by registered name
(``--backend``), worker fan-out, disk caches and the component cache all
travel on the session, and successive artifacts of an ``mcml all`` run
share its memos.
"""

from __future__ import annotations

import argparse
import sys

from repro.counting.api import (
    available_backends,
    backend_aliases,
    backend_capabilities,
)
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.spec.properties import property_names

ARTIFACTS = (
    "table1", "table2", "table3", "table4", "table5",
    "table6", "table7", "table8", "table9", "figure1", "figure2", "all",
    "serve", "cluster",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mcml",
        description="Regenerate the tables and figures of the MCML paper (PLDI 2020).",
    )
    parser.add_argument(
        "artifact",
        choices=ARTIFACTS,
        nargs="?",
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--properties",
        nargs="+",
        metavar="NAME",
        default=None,
        help=f"subset of properties (default: all 16); choices: {', '.join(property_names())}",
    )
    parser.add_argument(
        "--scope", type=int, default=None, help="override the scope for every property"
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="counting backend by registered name "
        f"({', '.join(available_backends())}; see --list-backends)",
    )
    parser.add_argument(
        "--counter",
        choices=("exact", "approx", "brute"),
        default="exact",
        help="deprecated alias of --backend (kept for old scripts)",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the registered counting backends with their capability "
        "flags and exit",
    )
    parser.add_argument(
        "--accmc-mode",
        choices=("product", "derived"),
        default="derived",
        help="AccMC construction (product = the paper's four counting problems)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--train-fraction", type=float, default=0.10,
        help="training fraction for the generalization tables (default 0.10)",
    )
    parser.add_argument(
        "--max-positives", type=int, default=5000,
        help="cap on bounded-exhaustive positive sets (default 5000)",
    )
    parser.add_argument(
        "--paper-scopes", action="store_true",
        help="table1 only: report at paper scopes using closed forms",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="processes to fan cold counting batches out over "
        "(default 1; 0 = one per core)",
    )
    parser.add_argument(
        "--fanout-min-vars", type=int, default=None, metavar="N",
        help="intra-problem component fan-out: with --workers > 1 and a "
        "decomposing backend, one hard problem whose component split has "
        ">= 2 components of >= N variables is counted through the worker "
        "pool and the sub-counts multiplied (default: off)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist model counts and compilations to DIR so re-runs "
        "skip the work (default: off)",
    )
    parser.add_argument(
        "--component-cache-mb", type=float, default=512.0, metavar="MB",
        help="budget of the cross-call component cache shared by all "
        "counting problems of a run (default 512; 0 disables sharing)",
    )
    parser.add_argument(
        "--component-spill", type=int, default=1, metavar="0|1",
        help="spill the component cache to cache-dir/components.sqlite "
        "(evictions and shutdown persist entries, misses consult disk) so "
        "component work survives re-runs; needs --cache-dir "
        "(default 1; 0 disables)",
    )
    parser.add_argument(
        "--circuit-store", type=int, default=1, metavar="0|1",
        help="persist compiled circuits to cache-dir/circuits.sqlite so a "
        "warm restart of a conditions_cubes backend (compiled) answers "
        "per-path region counts without recompiling; needs --cache-dir "
        "(default 1; 0 disables)",
    )
    parser.add_argument(
        "--fallback", default=None, metavar="NAME",
        help="degradation ladder: registered backend failed counts "
        "(budget/deadline/lost worker) are re-counted on, with explicit "
        "fallback provenance on the results (e.g. approxmc; default: off)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-problem wall-clock deadline on every metric count "
        "(CounterTimeout past it; default: none)",
    )
    parser.add_argument(
        "--budget", type=int, default=None, metavar="NODES",
        help="per-problem search-node budget on every metric count "
        "(CounterBudgetExceeded past it; default: none)",
    )
    parser.add_argument(
        "--region-strategy", choices=("conjunction", "per-path"),
        default="conjunction",
        help="AccMC/DiffMC region route: per-path decomposes each "
        "tree-region count into its disjoint path cubes (mc(phi&tau) = "
        "sum over paths of mc(phi&path)), deduping shared paths across "
        "trees and cached sessions — on a conditions_cubes backend "
        "(compiled) the sub-counts come from conditioning one cached "
        "circuit; conjunction is the paper's construction (default)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="after the artifact(s), print the session's engine stats as "
        "JSON — the same payload the serve daemon's stats verb returns",
    )
    serve = parser.add_argument_group(
        "serve", "options of the counting service daemon (mcml serve)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address of the daemon (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="listen port (default 0 = pick a free port; the bound port "
        "is printed on stdout as a JSON 'listening' event)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="request-queue depth before admission control answers "
        "'overloaded' (default 64)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="per-client budget of unanswered counting requests "
        "(default 8)",
    )
    serve.add_argument(
        "--solver-threads", type=int, default=1, metavar="N",
        help="solver lanes draining the daemon's queue, each owning its "
        "own engine clone over the shared cache-dir tiers, so distinct "
        "formulas count concurrently (identical ones still coalesce); "
        "mcml cluster gives every shard this many lanes (default 1)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=300.0, metavar="SECONDS",
        help="idle-connection deadline; a client that stalls mid-line "
        "(slow loris) is dropped past it (default 300)",
    )
    serve.add_argument(
        "--max-deadline", type=float, default=None, metavar="SECONDS",
        help="clamp every request's wall-clock deadline to at most this "
        "(default: no clamp; --deadline is the default injected into "
        "requests that carry none)",
    )
    serve.add_argument(
        "--max-budget", type=int, default=None, metavar="NODES",
        help="clamp every request's node budget to at most this "
        "(default: no clamp)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=5.0, metavar="SECONDS",
        help="extra wall-clock the SIGTERM drain grants past the largest "
        "in-flight deadline before answering leftovers with "
        "'shutting-down' (default 5)",
    )
    serve.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="mcml cluster only: number of counting daemons to launch in "
        "this process, each owning its own cache-dir subtree "
        "(cache-dir/shard-i) and consistent-hash key range; drive them "
        "with ShardedClient (default 2)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    kwargs = dict(
        scope=args.scope,
        counter=args.backend if args.backend is not None else args.counter,
        accmc_mode=args.accmc_mode,
        seed=args.seed,
        train_fraction=args.train_fraction,
        max_positives=args.max_positives,
        workers=args.workers,
        cache_dir=args.cache_dir,
        component_cache_mb=args.component_cache_mb,
        component_spill=bool(args.component_spill),
        circuit_store=bool(args.circuit_store),
        fallback=args.fallback,
        deadline=args.deadline,
        budget=args.budget,
        region_strategy=args.region_strategy,
        fanout_min_vars=args.fanout_min_vars,
    )
    if args.properties:
        kwargs["properties"] = tuple(args.properties)
    return ExperimentConfig(**kwargs)


#: ``Capabilities`` field → column header of the ``--list-backends`` table.
_CAPABILITY_COLUMNS = {
    "exact": "exact",
    "counts_formulas": "formulas",
    "supports_projection": "projection",
    "parallel_safe": "parallel",
    "owns_component_cache": "components",
    "conditions_cubes": "cubes",
    "routes": "routes",
    "decomposes": "decomposes",
}


def list_backends() -> str:
    """The capability table ``mcml --list-backends`` prints.

    One row per registered backend, one yes/no column per declared
    :class:`~repro.counting.api.Capabilities` flag — the same negotiation
    surface the engine routes on, so what this table says a backend can
    do is exactly what the engine will let it do.  Backends declaring
    ``routes`` (composite) additionally render their routing table:
    which inspectable rule sends a problem to which target backend.
    """
    from repro.counting.router import ROUTING_RULES

    names = available_backends()
    rows = []
    for name in names:
        caps = backend_capabilities(name).as_dict()
        aliases = backend_aliases(name)
        rows.append(
            [name]
            + [("yes" if caps.get(field, False) else "no")
               for field in _CAPABILITY_COLUMNS]
            + [", ".join(aliases) if aliases else "-"]
        )
    header = ["backend", *_CAPABILITY_COLUMNS.values(), "aliases"]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    def render(cells):
        return "  " + "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = ["registered counting backends:", render(header)]
    lines.extend(render(row) for row in rows)
    lines.append("")
    lines.append("composite routing table (first matching rule wins):")
    rule_rows = [
        [rule.name, rule.description, "-> " + rule.target]
        for rule in ROUTING_RULES
    ]
    rule_header = ["rule", "predicate", "target"]
    rule_widths = [
        max(len(rule_header[i]), *(len(row[i]) for row in rule_rows))
        for i in range(len(rule_header))
    ]
    def render_rule(cells):
        return "  " + "  ".join(
            c.ljust(w) for c, w in zip(cells, rule_widths)
        ).rstrip()
    lines.append(render_rule(rule_header))
    lines.extend(render_rule(row) for row in rule_rows)
    return "\n".join(lines)


def run_artifact(
    artifact: str,
    config: ExperimentConfig,
    paper_scopes: bool = False,
    session=None,
) -> str:
    """Render one artifact, counting through ``session`` when given."""
    if artifact.startswith("table"):
        number = int(artifact[len("table"):])
        if session is not None:
            return session.table(number, config=config, paper_scopes=paper_scopes)
        with config.session() as owned:
            return owned.table(number, config=config, paper_scopes=paper_scopes)
    if artifact == "figure1":
        result = figures.figure1()
        return (
            "Figure 1: Alloy specification\n"
            + result.source
            + f"\nparsed predicates: {', '.join(result.predicates)}"
            + f"\ncommand {result.run_label}: scope {result.run_scope} -> CNF with "
            + f"{result.primary_vars} primary vars, {result.total_vars} total vars, "
            + f"{result.clauses} clauses"
        )
    if artifact == "figure2":
        solutions = figures.figure2()
        return figures.render_figure2(solutions)
    raise ValueError(f"unknown artifact {artifact!r}")


def serve(args: argparse.Namespace, config: ExperimentConfig) -> int:
    """``mcml serve``: run the counting service daemon until drained.

    Emits JSON events on stdout (``listening`` with the bound host/port,
    ``drained`` on exit) so supervisors and tests can parse its lifecycle;
    everything else goes to the log on stderr.  SIGTERM/SIGINT initiate a
    graceful drain: stop accepting, finish the backlog within
    deadline+grace, spill the disk tiers, exit 0.
    """
    import json
    import logging
    import signal

    from repro.counting.service.server import CountingServer

    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    with config.session() as session:
        server = CountingServer(
            session,
            session_factory=config.session,
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            max_inflight_per_client=args.max_inflight,
            solver_threads=args.solver_threads,
            read_timeout=args.read_timeout,
            default_deadline=args.deadline,
            default_budget=args.budget,
            max_deadline=args.max_deadline,
            max_budget=args.max_budget,
            drain_grace=args.drain_grace,
        )
        host, port = server.start()

        def _drain_signal(signum, frame):
            server.initiate_drain(signal.Signals(signum).name)

        signal.signal(signal.SIGTERM, _drain_signal)
        signal.signal(signal.SIGINT, _drain_signal)
        print(json.dumps({"event": "listening", "host": host, "port": port}), flush=True)
        clean = server.serve_until_drained()
        print(json.dumps({"event": "drained", "clean": clean}), flush=True)
        return 0 if clean else 1


def cluster(args: argparse.Namespace, config: ExperimentConfig) -> int:
    """``mcml cluster --shards N``: one process, N counting daemons.

    Each shard owns its own session over ``cache-dir/shard-i`` (disjoint
    sqlite tiers — the :class:`~repro.counting.service.cluster.ShardedClient`
    partition guarantees each request signature only ever warms one of
    them).  Emits one JSON ``listening`` event carrying every shard's
    bound address, then serves until SIGTERM/SIGINT drains all shards
    and emits a combined ``drained`` event.  With ``--port P`` shard *i*
    binds ``P + i``; the default picks N free ports.

    One process keeps the launcher dependency-free for benches and
    smoke tests; production clusters that need kill-one-shard isolation
    run N separate ``mcml serve`` daemons and the same ``ShardedClient``.
    """
    import json
    import logging
    import signal
    import threading
    from dataclasses import replace as config_replace
    from pathlib import Path

    from repro.counting.service.server import CountingServer

    if args.shards < 1:
        print(json.dumps({"event": "error", "message": "--shards must be >= 1"}))
        return 2
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    servers: list[CountingServer] = []
    bound: list[dict] = []
    try:
        for i in range(args.shards):
            shard_config = (
                config
                if config.cache_dir is None
                else config_replace(
                    config, cache_dir=str(Path(config.cache_dir) / f"shard-{i}")
                )
            )
            server = CountingServer(
                shard_config.session(),
                session_factory=shard_config.session,
                host=args.host,
                port=(args.port + i) if args.port else 0,
                max_queue=args.max_queue,
                max_inflight_per_client=args.max_inflight,
                solver_threads=args.solver_threads,
                read_timeout=args.read_timeout,
                default_deadline=args.deadline,
                default_budget=args.budget,
                max_deadline=args.max_deadline,
                max_budget=args.max_budget,
                drain_grace=args.drain_grace,
            )
            host, port = server.start()
            servers.append(server)
            bound.append({"shard": i, "host": host, "port": port})
    except BaseException:
        for server in servers:
            server.close()
        raise

    def _drain_all(signum, frame):
        for server in servers:
            server.initiate_drain(signal.Signals(signum).name)

    signal.signal(signal.SIGTERM, _drain_all)
    signal.signal(signal.SIGINT, _drain_all)
    print(
        json.dumps({"event": "listening", "shards": bound}),
        flush=True,
    )
    outcomes: dict[int, bool] = {}

    def _serve(index: int, server: CountingServer) -> None:
        outcomes[index] = server.serve_until_drained()

    threads = [
        threading.Thread(target=_serve, args=(i, server), daemon=True)
        for i, server in enumerate(servers)
    ]
    for thread in threads:
        thread.start()
    # Poll-join so the main thread stays responsive to signals.
    for thread in threads:
        while thread.is_alive():
            thread.join(timeout=0.2)
    clean = all(outcomes.get(i, False) for i in range(args.shards))
    print(json.dumps({"event": "drained", "clean": clean}), flush=True)
    return 0 if clean else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_backends:
        print(list_backends())
        return 0
    if args.artifact is None:
        parser.error("an artifact is required (or --list-backends)")
    config = config_from_args(args)
    if args.artifact == "serve":
        return serve(args, config)
    if args.artifact == "cluster":
        return cluster(args, config)
    artifacts = (
        [a for a in ARTIFACTS if a not in ("all", "serve", "cluster")]
        if args.artifact == "all"
        else [args.artifact]
    )
    # One session for the whole invocation: an ``mcml all`` run shares
    # translations, counts and the worker pool across artifacts instead of
    # rebuilding the plumbing per table.
    with config.session() as session:
        for artifact in artifacts:
            print(run_artifact(artifact, config, paper_scopes=args.paper_scopes, session=session))
            print()
        if args.stats:
            import json

            from repro.counting.service.protocol import engine_stats_payload

            print(json.dumps(engine_stats_payload(session), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
