"""Table 1: subject properties and model counts.

For each property: the scope, the state-space size, the number of positive
solutions enumerated with symmetry breaking (the "Valid-SymBr (Alloy)"
column), the ApproxMC estimates with and without symmetry breaking, and the
exact counts with and without symmetry breaking ("ProjMC" columns).

At reduced scopes every cell is computed live.  With ``paper_scopes=True``
the no-symmetry-breaking exact column is checked against the closed forms
instead of run (a pure-Python counter cannot finish scope 20; the closed
forms are how DESIGN.md §2 verified the published numbers), and live
counting is skipped — mirroring the "-" time-outs in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counting import ApproxMCCounter, CountingEngine, closed_form_count
from repro.counting.exact import CounterBudgetExceeded
from repro.data.generation import enumerate_positive_bits
from repro.experiments.config import ExperimentConfig
from repro.experiments.render import render_table
from repro.spec.symmetry import SymmetryBreaking


@dataclass(frozen=True)
class Table1Row:
    property_name: str
    scope: int
    state_space: str  # "2^m"
    valid_symbr_alloy: int  # enumeration, symmetry breaking on
    est_valid_symbr: int | None  # ApproxMC, symmetry breaking on
    est_valid_nosymbr: int | None  # ApproxMC, symmetry breaking off
    valid_symbr_exact: int | None  # exact counter, symmetry breaking on
    valid_nosymbr_exact: int | None  # exact counter, symmetry breaking off
    closed_form: int  # analytic count without symmetry breaking
    primary_vars: int
    total_vars: int
    clauses: int


HEADERS = [
    "Property", "Scope", "StateSpace", "Valid-SymBr(enum)", "Est-SymBr(approx)",
    "Est-NoSymBr(approx)", "Valid-SymBr(exact)", "Valid-NoSymBr(exact)",
    "ClosedForm-NoSymBr", "PrimVars", "TotVars", "Clauses",
]


def table1(
    config: ExperimentConfig | None = None,
    paper_scopes: bool = False,
    session=None,
) -> list[Table1Row]:
    """Compute Table 1 rows (live at reduced scopes, analytic at paper scopes).

    One engine for the whole table: translations and counts are memoized,
    so re-rendering (or computing Table 1 after another experiment sharing
    the session) does no counting work twice, and the config's
    workers/cache_dir knobs fan per-property symbr/plain pairs out and
    make cache-dir re-runs perform zero backend counts.

    The exact columns are definitionally exact projected counts of
    Tseitin CNFs, so the engine must be exact and projection-capable: a
    passed-in ``session`` is used when its capabilities qualify (its owner
    closes it), anything else — including configs selecting ``brute`` or
    ``approxmc`` for the *metric* tables — falls back to a private exact
    engine with the config's scaling knobs, exactly the paper's setup.
    """
    config = config or ExperimentConfig()
    if session is not None:
        caps = session.capabilities
        if caps.exact and caps.supports_projection:
            return _table1_rows(session.engine, config, paper_scopes)
    with CountingEngine(config=config.engine_config()) as engine:
        return _table1_rows(engine, config, paper_scopes)


def _table1_rows(engine, config: ExperimentConfig, paper_scopes: bool) -> list[Table1Row]:
    symmetry = SymmetryBreaking("adjacent")
    rows: list[Table1Row] = []
    for prop in config.selected_properties():
        scope = prop.paper_scope if paper_scopes else config.scope_for(prop)
        m = scope * scope
        closed = closed_form_count(prop.oracle, scope)
        if paper_scopes:
            # Analytic-only mode: the paper's hardware/time budget does not
            # exist here, so live counting is replaced by the closed forms
            # (positives column included when tabulated).
            problem = engine.translate(prop, scope, symmetry=symmetry) if m <= 450 else None
            stats = problem.stats() if problem else {"primary_vars": m, "total_vars": 0, "clauses": 0}
            rows.append(
                Table1Row(
                    prop.name, scope, f"2^{m}", -1, None, None, None, closed,
                    closed, stats["primary_vars"], stats["total_vars"], stats["clauses"],
                )
            )
            continue

        enumerated = enumerate_positive_bits(prop, scope, symmetry=symmetry)
        problem_symbr = engine.translate(prop, scope, symmetry=symmetry)
        problem_plain = engine.translate(prop, scope)
        approx = ApproxMCCounter(seed=config.seed)
        try:
            exact_symbr, exact_plain = (
                result.value
                for result in engine.solve_many(
                    [problem_symbr.cnf, problem_plain.cnf]
                )
            )
        except CounterBudgetExceeded:
            exact_symbr = exact_plain = None
        est_symbr = approx.count(problem_symbr.cnf)
        est_plain = approx.count(problem_plain.cnf)
        stats = problem_symbr.stats()
        rows.append(
            Table1Row(
                property_name=prop.name,
                scope=scope,
                state_space=f"2^{m}",
                valid_symbr_alloy=len(enumerated),
                est_valid_symbr=est_symbr,
                est_valid_nosymbr=est_plain,
                valid_symbr_exact=exact_symbr,
                valid_nosymbr_exact=exact_plain,
                closed_form=closed,
                primary_vars=stats["primary_vars"],
                total_vars=stats["total_vars"],
                clauses=stats["clauses"],
            )
        )
    return rows


def render(rows: list[Table1Row]) -> str:
    body = [
        [
            r.property_name, r.scope, r.state_space,
            r.valid_symbr_alloy if r.valid_symbr_alloy >= 0 else "-",
            r.est_valid_symbr, r.est_valid_nosymbr,
            r.valid_symbr_exact, r.valid_nosymbr_exact, r.closed_form,
            r.primary_vars, r.total_vars, r.clauses,
        ]
        for r in rows
    ]
    return render_table(HEADERS, body, title="Table 1: subject properties and model counts")
