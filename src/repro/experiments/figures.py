"""Figures 1 and 2 of the paper.

Figure 1 is the Alloy specification of equivalence relations; we parse it
with our own front-end and report the compiled CNF's size.  Figure 2 shows
the five non-isomorphic equivalence relations Alloy enumerates at scope 4;
we regenerate them by enumeration under partial symmetry breaking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generation import enumerate_positive_bits
from repro.experiments.render import render_matrix
from repro.spec.parser import parse
from repro.spec.properties import get_property
from repro.spec.symmetry import SymmetryBreaking
from repro.spec.translate import translate

#: The paper's Figure 1, verbatim (modulo whitespace).
FIGURE_1_SOURCE = """\
sig S { r: set S } // r is a binary relation of type SxS
pred Reflexive() { all s: S | s->s in r }
pred Symmetric() {
  all s, t: S | s->t in r implies t->s in r }
pred Transitive() { all s, t, u: S |
  s->t in r and t->u in r implies s->u in r }
pred Equivalence() {
  Reflexive and Symmetric and Transitive }
E4: run Equivalence for exactly 4 S
"""


@dataclass(frozen=True)
class Figure1Result:
    source: str
    predicates: tuple[str, ...]
    run_label: str
    run_scope: int
    primary_vars: int
    total_vars: int
    clauses: int


def figure1() -> Figure1Result:
    """Parse the Figure 1 spec and compile its run command to CNF."""
    spec = parse(FIGURE_1_SOURCE)
    run = spec.runs[0]
    problem = translate(
        spec.formula(run.predicate), run.scope, symmetry=SymmetryBreaking()
    )
    stats = problem.stats()
    return Figure1Result(
        source=FIGURE_1_SOURCE,
        predicates=tuple(sorted(spec.predicates)),
        run_label=run.label or "",
        run_scope=run.scope,
        primary_vars=stats["primary_vars"],
        total_vars=stats["total_vars"],
        clauses=stats["clauses"],
    )


def figure2(scope: int = 4) -> np.ndarray:
    """The non-isomorphic equivalence relations at the given scope.

    At scope 4 this returns exactly the 5 solutions of the paper's
    Figure 2 (partial symmetry breaking keeps F(scope+1) representatives).
    """
    prop = get_property("Equivalence")
    return enumerate_positive_bits(prop, scope, symmetry=SymmetryBreaking())


def render_figure2(solutions: np.ndarray, scope: int = 4) -> str:
    blocks = [render_matrix(row, scope) for row in solutions]
    header = (
        f"Figure 2: {len(solutions)} non-isomorphic equivalence relations "
        f"at scope {scope}\n"
    )
    grids = []
    for index, block in enumerate(blocks, start=1):
        grids.append(f"solution {index}:\n{block}")
    return header + "\n\n".join(grids)
