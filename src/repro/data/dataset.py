"""Dataset container and split policies."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: The five training:test ratios evaluated in the paper (Section 5).
PAPER_SPLIT_RATIOS = (0.75, 0.50, 0.25, 0.10, 0.01)


@dataclass
class Dataset:
    """Feature matrix (flattened adjacency bits) plus binary labels."""

    X: np.ndarray  # (n_samples, scope²) uint8
    y: np.ndarray  # (n_samples,) int64, 1 = satisfies the property
    scope: int
    property_name: str
    symmetry: str | None = None  # symmetry-breaking kind used, if any

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.uint8)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.X.ndim != 2 or self.X.shape[1] != self.scope**2:
            raise ValueError(
                f"X must be (n, {self.scope ** 2}), got {self.X.shape}"
            )
        if self.y.shape != (self.X.shape[0],):
            raise ValueError("y length must match X rows")

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def num_positive(self) -> int:
        return int(self.y.sum())

    @property
    def num_negative(self) -> int:
        return len(self) - self.num_positive

    def split(
        self,
        train_fraction: float,
        rng: np.random.Generator | int | None = 0,
        stratified: bool = True,
    ) -> tuple["Dataset", "Dataset"]:
        """Random train/test split with no overlap.

        The paper stresses that training rows are a *random* subset, not a
        prefix of the solver's enumeration order; shuffling here provides
        that.  Stratification keeps both classes present even at the 1:99
        ratio.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        n = len(self)
        if stratified:
            train_idx: list[np.ndarray] = []
            test_idx: list[np.ndarray] = []
            for label in (0, 1):
                members = np.flatnonzero(self.y == label)
                rng.shuffle(members)
                cut = max(1, round(train_fraction * len(members))) if len(members) else 0
                cut = min(cut, len(members) - 1) if len(members) > 1 else cut
                train_idx.append(members[:cut])
                test_idx.append(members[cut:])
            train = np.concatenate(train_idx)
            test = np.concatenate(test_idx)
            rng.shuffle(train)
            rng.shuffle(test)
        else:
            order = rng.permutation(n)
            cut = max(1, round(train_fraction * n))
            train, test = order[:cut], order[cut:]
        return self._take(train), self._take(test)

    def _take(self, indices: np.ndarray) -> "Dataset":
        return Dataset(
            X=self.X[indices],
            y=self.y[indices],
            scope=self.scope,
            property_name=self.property_name,
            symmetry=self.symmetry,
        )

    def subsample(
        self, max_rows: int, rng: np.random.Generator | int | None = 0
    ) -> "Dataset":
        """A stratified random subset of at most ``max_rows`` rows."""
        if len(self) <= max_rows:
            return self
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        fraction = max_rows / len(self)
        kept, _ = self.split(fraction, rng=rng)
        return kept

    # -- persistence ---------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            path,
            X=self.X,
            y=self.y,
            scope=self.scope,
            property_name=self.property_name,
            symmetry=self.symmetry if self.symmetry is not None else "",
        )

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        with np.load(path, allow_pickle=False) as data:
            symmetry = str(data["symmetry"])
            return cls(
                X=data["X"],
                y=data["y"],
                scope=int(data["scope"]),
                property_name=str(data["property_name"]),
                symmetry=symmetry or None,
            )


def train_test_split(
    dataset: Dataset,
    train_fraction: float,
    rng: np.random.Generator | int | None = 0,
) -> tuple[Dataset, Dataset]:
    """Functional alias for :meth:`Dataset.split`."""
    return dataset.split(train_fraction, rng=rng)
