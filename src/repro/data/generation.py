"""Positive enumeration and negative sampling."""

from __future__ import annotations

import numpy as np

from repro.counting.brute import MAX_BRUTE_VARS, iter_assignment_blocks
from repro.data.dataset import Dataset
from repro.sat.enumerate import enumerate_as_bits
from repro.spec.matrices import bits_to_matrices, property_mask
from repro.spec.properties import Property
from repro.spec.symmetry import SymmetryBreaking
from repro.spec.translate import translate


def enumerate_positive_bits(
    prop: Property,
    scope: int,
    symmetry: SymmetryBreaking | None = None,
    limit: int | None = None,
    method: str = "auto",
) -> np.ndarray:
    """All positive samples at the scope, as a (count, scope²) uint8 array.

    ``method`` selects the enumerator: ``"brute"`` sweeps the whole space
    with the vectorised evaluators (scopes with ≤ ``MAX_BRUTE_VARS`` bits),
    ``"sat"`` runs projected AllSAT on the compiled CNF, ``"auto"`` picks
    brute force whenever legal.  Both produce the identical set (tested);
    order is the numeric sweep order or solver order respectively — callers
    must not rely on it, mirroring the paper's remark that solution order is
    irrelevant because training rows are sampled randomly.
    """
    m = scope * scope
    if method == "auto":
        method = "brute" if m <= MAX_BRUTE_VARS else "sat"
    if method == "brute":
        if m > MAX_BRUTE_VARS:
            raise ValueError(f"scope {scope} too large for brute-force enumeration")
        mask_fn = property_mask(prop.oracle)
        chunks: list[np.ndarray] = []
        found = 0
        for block in iter_assignment_blocks(m):
            keep = mask_fn(bits_to_matrices(block, scope))
            if symmetry is not None:
                keep &= symmetry.mask(block, scope)
            if keep.any():
                rows = block[keep]
                if limit is not None and found + len(rows) > limit:
                    rows = rows[: limit - found]
                chunks.append(rows.astype(np.uint8))
                found += len(rows)
                if limit is not None and found >= limit:
                    break
        if not chunks:
            return np.zeros((0, m), dtype=np.uint8)
        return np.concatenate(chunks, axis=0)
    if method == "sat":
        problem = translate(prop, scope, symmetry=symmetry)
        rows = [
            bits
            for bits in enumerate_as_bits(
                problem.cnf, problem.primary_vars, limit=limit
            )
        ]
        if not rows:
            return np.zeros((0, m), dtype=np.uint8)
        return np.array(rows, dtype=np.uint8)
    raise ValueError(f"unknown enumeration method {method!r}")


def sample_negative_bits(
    prop: Property,
    scope: int,
    count: int,
    rng: np.random.Generator | int | None = 0,
    exclude: np.ndarray | None = None,
    max_batches: int = 10_000,
) -> np.ndarray:
    """Rejection-sample ``count`` distinct negative examples.

    Candidates are uniform random bit matrices; each is screened with the
    vectorised evaluator (the Alloy-Evaluator step — no solving).  Rows in
    ``exclude`` and duplicates are dropped so the dataset never contains a
    mislabelled or repeated sample.
    """
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    m = scope * scope
    mask_fn = property_mask(prop.oracle)
    # Dedup state is kept bit-packed: np.unique over packed rows replaces
    # the per-row Python loop + tobytes() set, and seeding ``seen`` with the
    # packed ``exclude`` rows preserves the exclusion semantics.
    if exclude is not None:
        seen = np.packbits(
            np.asarray(exclude, dtype=np.uint8), axis=1
        )
    else:
        seen = np.zeros((0, (m + 7) // 8), dtype=np.uint8)
    collected: list[np.ndarray] = []
    remaining = count
    batch_size = max(256, 2 * count)
    for _ in range(max_batches):
        if remaining <= 0:
            break
        candidates = (rng.random((batch_size, m)) < 0.5).astype(np.uint8)
        negatives = candidates[~mask_fn(bits_to_matrices(candidates, scope))]
        if len(negatives) == 0:
            continue
        packed = np.packbits(negatives, axis=1)
        # First occurrence of each row across `seen ++ batch`, in one
        # vectorised pass; rows whose first occurrence lies in the batch
        # are new, and sorting their indices keeps first-seen order.
        _, first_index = np.unique(
            np.concatenate([seen, packed], axis=0), axis=0, return_index=True
        )
        new_index = np.sort(first_index[first_index >= len(seen)] - len(seen))
        if len(new_index) > remaining:
            new_index = new_index[:remaining]
        if len(new_index) == 0:
            continue
        collected.append(negatives[new_index])
        seen = np.concatenate([seen, packed[new_index]], axis=0)
        remaining -= len(new_index)
    if remaining > 0:
        raise RuntimeError(
            f"could not sample {count} distinct negatives at scope {scope} "
            f"(the negative space may be too small)"
        )
    return np.concatenate(collected, axis=0)


def generate_dataset(
    prop: Property,
    scope: int,
    symmetry: SymmetryBreaking | None = None,
    negative_ratio: float = 1.0,
    max_positives: int | None = None,
    rng: np.random.Generator | int | None = 0,
    method: str = "auto",
) -> Dataset:
    """Build a labelled dataset for one property.

    ``negative_ratio`` is #negatives / #positives — 1.0 reproduces the
    paper's balanced sets; Table 9's class-ratio sweep varies it.
    ``max_positives`` caps the bounded-exhaustive set (stratified subsample)
    to keep the pure-Python pipeline fast at larger scopes.
    """
    if negative_ratio <= 0:
        raise ValueError("negative_ratio must be positive")
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    positives = enumerate_positive_bits(prop, scope, symmetry=symmetry, method=method)
    if len(positives) == 0:
        raise RuntimeError(f"{prop.name} has no solutions at scope {scope}")
    if max_positives is not None and len(positives) > max_positives:
        chosen = rng.choice(len(positives), size=max_positives, replace=False)
        positives = positives[chosen]
    n_negative = max(1, round(negative_ratio * len(positives)))
    # At toy scopes the negative space itself can be tiny (e.g. only 3
    # non-transitive relations exist at scope 2); cap the request at the
    # exact number of negatives in existence.
    from repro.counting.oracles import closed_form_count

    available = (1 << (scope * scope)) - closed_form_count(prop.oracle, scope)
    if available <= 0:
        raise RuntimeError(f"{prop.name} has no negative examples at scope {scope}")
    n_negative = min(n_negative, available)
    negatives = sample_negative_bits(
        prop, scope, n_negative, rng=rng, exclude=None
    )
    X = np.concatenate([positives, negatives], axis=0)
    y = np.concatenate(
        [np.ones(len(positives), dtype=np.int64), np.zeros(len(negatives), dtype=np.int64)]
    )
    order = rng.permutation(len(X))
    return Dataset(
        X=X[order],
        y=y[order],
        scope=scope,
        property_name=prop.name,
        symmetry=symmetry.kind if symmetry is not None else None,
    )
