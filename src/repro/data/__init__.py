"""Dataset generation for the study.

Reproduces Section 5's "Generation of positive and negative samples":

* **positives** — bounded-exhaustive: *every* solution of the property at
  the chosen scope (optionally up to Alloy-style partial symmetry
  breaking).  Small scopes sweep the full ``2^{n²}`` space with the
  vectorised evaluators; larger scopes fall back to projected AllSAT
  enumeration — the same solution set, as the paper notes, regardless of
  which enumerator produced it.
* **negatives** — rejection sampling: uniform random matrices screened by
  the concrete evaluator (no constraint solving), exactly the paper's
  Alloy-Evaluator procedure.
* **balancing** — datasets are balanced 1:1 by default; the class-ratio knob
  of Table 9 is exposed as ``negative_ratio``.

Features are the flattened row-major adjacency matrix, so feature ``k``
corresponds to CNF primary variable ``k+1`` throughout the stack.
"""

from repro.data.dataset import Dataset, train_test_split
from repro.data.generation import (
    enumerate_positive_bits,
    generate_dataset,
    sample_negative_bits,
)

__all__ = [
    "Dataset",
    "enumerate_positive_bits",
    "generate_dataset",
    "sample_negative_bits",
    "train_test_split",
]
