"""End-to-end MCML workflow.

One call runs the full experiment unit used throughout Section 5: generate a
dataset for a property, split, train a model, score it traditionally on the
test set, and — for decision trees — quantify it against the whole bounded
input space with AccMC.  The symmetry settings for *data generation* and for
*whole-space evaluation* are independent knobs because RQ3/RQ4 (Tables 5–7)
deliberately mismatch them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accmc import AccMC, AccMCResult
from repro.counting.engine import CountingEngine, EngineConfig
from repro.data.dataset import Dataset
from repro.data.generation import generate_dataset
from repro.ml import MODEL_REGISTRY
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.metrics import ConfusionCounts, confusion_counts
from repro.spec.properties import Property, get_property
from repro.spec.symmetry import SymmetryBreaking


@dataclass(frozen=True)
class PipelineResult:
    """Everything one experiment row needs."""

    property_name: str
    scope: int
    model_name: str
    train_fraction: float
    train_size: int
    test_size: int
    test_counts: ConfusionCounts
    whole_space: AccMCResult | None

    @property
    def test_metrics(self) -> dict[str, float]:
        return self.test_counts.as_dict()


class MCMLPipeline:
    """Reusable experiment runner.

    Parameters
    ----------
    counter:
        Counting backend handed to AccMC (default: the exact counter).
    accmc_mode:
        ``"product"`` (the paper's four-problem construction) or
        ``"derived"`` (algebraic shortcut); see :mod:`repro.core.accmc`.
    seed:
        Master seed for data generation, splitting and model training.
    engine:
        An existing :class:`CountingEngine` to share memoized counts,
        translations and tree regions with other pipelines/evaluators.
    config:
        :class:`EngineConfig` (worker fan-out, disk cache) for the engine
        built when ``engine`` is not supplied.
    region_strategy:
        AccMC region-counting route — ``"conjunction"`` (default) or
        ``"per-path"``; see :class:`repro.core.accmc.AccMC`.
    """

    def __init__(
        self,
        counter=None,
        accmc_mode: str = "product",
        seed: int = 0,
        engine: CountingEngine | None = None,
        config: EngineConfig | None = None,
        region_strategy: str = "conjunction",
    ) -> None:
        self.accmc = AccMC(
            counter=counter,
            mode=accmc_mode,
            engine=engine,
            config=config,
            region_strategy=region_strategy,
        )
        self.engine = self.accmc.engine
        self.seed = seed

    # -- dataset handling -------------------------------------------------------------

    def make_dataset(
        self,
        prop: Property | str,
        scope: int,
        symmetry: SymmetryBreaking | None = None,
        negative_ratio: float = 1.0,
        max_positives: int | None = None,
    ) -> Dataset:
        prop = get_property(prop) if isinstance(prop, str) else prop
        return generate_dataset(
            prop,
            scope,
            symmetry=symmetry,
            negative_ratio=negative_ratio,
            max_positives=max_positives,
            rng=np.random.default_rng(self.seed),
        )

    # -- model handling ---------------------------------------------------------------

    def train(self, model_name: str, train: Dataset, **model_params):
        try:
            factory = MODEL_REGISTRY[model_name]
        except KeyError:
            raise KeyError(
                f"unknown model {model_name!r}; known: {', '.join(MODEL_REGISTRY)}"
            ) from None
        params = dict(model_params)
        if "random_state" not in params and "random_state" in factory.__init__.__code__.co_varnames:
            params["random_state"] = self.seed
        model = factory(**params)
        model.fit(train.X.astype(np.float64), train.y)
        return model

    # -- experiment unit -------------------------------------------------------------

    def run(
        self,
        prop: Property | str,
        scope: int,
        model_name: str = "DT",
        train_fraction: float = 0.10,
        data_symmetry: SymmetryBreaking | None = None,
        eval_symmetry: SymmetryBreaking | None = None,
        negative_ratio: float = 1.0,
        max_positives: int | None = None,
        whole_space: bool | None = None,
        dataset: Dataset | None = None,
        **model_params,
    ) -> PipelineResult:
        """Run one (property, model, split) experiment.

        ``whole_space`` defaults to True for decision trees and False for
        the other models (whose logic has no CNF translation here — exactly
        the paper's setup, where only DTs get MCML metrics).  Pass a
        prebuilt ``dataset`` to reuse generation work across models/ratios.
        """
        prop = get_property(prop) if isinstance(prop, str) else prop
        if dataset is None:
            dataset = self.make_dataset(
                prop,
                scope,
                symmetry=data_symmetry,
                negative_ratio=negative_ratio,
                max_positives=max_positives,
            )
        train, test = dataset.split(train_fraction, rng=np.random.default_rng(self.seed + 1))
        model = self.train(model_name, train, **model_params)
        prediction = model.predict(test.X.astype(np.float64))
        test_counts = confusion_counts(test.y, prediction)

        if whole_space is None:
            whole_space = isinstance(model, DecisionTreeClassifier)
        accmc_result: AccMCResult | None = None
        if whole_space:
            if not isinstance(model, DecisionTreeClassifier):
                raise ValueError(
                    "whole-space (AccMC) evaluation requires a decision tree"
                )
            ground_truth = self.accmc.ground_truth(prop, scope, symmetry=eval_symmetry)
            accmc_result = self.accmc.evaluate(model, ground_truth)

        return PipelineResult(
            property_name=prop.name,
            scope=scope,
            model_name=model_name,
            train_fraction=train_fraction,
            train_size=len(train),
            test_size=len(test),
            test_counts=test_counts,
            whole_space=accmc_result,
        )
