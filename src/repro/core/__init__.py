"""MCML — the paper's contribution.

* :mod:`repro.core.tree2cnf` — the Tree2CNF sub-module of Figure 4:
  translates decision-tree path logic to CNF with no auxiliary variables,
  linear in the tree size (Section 4's Håstad-negation construction).
* :mod:`repro.core.accmc` — AccMC: whole-input-space confusion counts of a
  decision tree against a ground-truth relational property, by model
  counting (Equations 1–4).
* :mod:`repro.core.diffmc` — DiffMC: semantic difference between two trees
  over the whole input space, no ground truth needed (Equations 5–11).
* :mod:`repro.core.pipeline` — the end-to-end MCML workflow used by the
  experiments: generate data, train, evaluate traditionally and with MCML.
* :mod:`repro.core.session` — :class:`MCMLSession`, the facade owning one
  engine + config + stores, through which AccMC/DiffMC/BNN metrics, the
  pipeline and every paper table run.
"""

from repro.core.accmc import AccMC, AccMCResult
from repro.core.diffmc import DiffMC, DiffMCResult
from repro.core.tree2cnf import label_cubes, label_region_cnf, tree_paths_formula
from repro.core.pipeline import MCMLPipeline, PipelineResult
from repro.core.session import MCMLSession

__all__ = [
    "AccMC",
    "AccMCResult",
    "DiffMC",
    "DiffMCResult",
    "MCMLPipeline",
    "MCMLSession",
    "PipelineResult",
    "label_cubes",
    "label_region_cnf",
    "tree_paths_formula",
]
