"""DiffMC: semantic difference between two trees (Equations 5–11).

For trees ``d₁``, ``d₂`` over the same ``n`` binary inputs::

    tt = mc(τ₁ ∧ τ₂)    tf = mc(τ₁ ∧ ψ₂)
    ft = mc(ψ₁ ∧ τ₂)    ff = mc(ψ₁ ∧ ψ₂)

    diff = (tf + ft) / 2ⁿ        sim = (tt + ff) / 2ⁿ  =  1 − diff

No ground truth and no dataset are required — this is the paper's answer to
"is this model basically the same as this other model?".  All four CNFs are
auxiliary-free (Tree2CNF output), so conjunction is plain clause union and
any counting backend applies.

Two region constructions are negotiated against the backend, exactly as in
:class:`repro.core.accmc.AccMC`: the default ``conjunction`` strategy
counts the four clause-union CNFs above, while ``region_strategy=
"per-path"`` (exact backends only) decomposes each count as
``Σ_paths mc(region₁ ∧ path₂)`` over the second tree's path cubes.  On a
``conditions_cubes`` backend (``compiled``) the per-path route compiles
just *two* circuits — τ₁'s and ψ₁'s regions — and answers all four
Table 8 counts by unit-cube conditioning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction

from repro.counting.api import CountRequest
from repro.counting.engine import CountingEngine, EngineConfig, shared_engine
from repro.ml.decision_tree import DecisionTreeClassifier


@dataclass(frozen=True)
class DiffMCResult:
    """The TT/TF/FT/FF counts and diff/sim ratios of Table 8."""

    tt: int
    tf: int
    ft: int
    ff: int
    num_inputs: int  # number of input variables n (space size 2^n)
    elapsed_seconds: float

    @property
    def total(self) -> int:
        return 1 << self.num_inputs

    @property
    def diff(self) -> float:
        return float(Fraction(self.tf + self.ft, self.total))

    @property
    def sim(self) -> float:
        return float(Fraction(self.tt + self.ff, self.total))

    @property
    def agree(self) -> int:
        return self.tt + self.ff

    @property
    def disagree(self) -> int:
        return self.tf + self.ft

    def as_row(self) -> dict[str, float]:
        """One row of Table 8 (Diff reported in percent, as in the paper)."""
        return {
            "TT": float(self.tt),
            "TF": float(self.tf),
            "FT": float(self.ft),
            "FF": float(self.ff),
            "diff_percent": 100.0 * self.diff,
            "time": self.elapsed_seconds,
        }


class DiffMC:
    """Quantify the semantic difference between two decision trees."""

    def __init__(
        self,
        counter=None,
        engine: CountingEngine | None = None,
        config: EngineConfig | None = None,
        region_strategy: str = "conjunction",
        surface=None,
    ) -> None:
        if region_strategy not in ("conjunction", "per-path"):
            raise ValueError(f"unknown region strategy {region_strategy!r}")
        self.engine = engine if engine is not None else shared_engine(counter, config)
        self.counter = self.engine
        # Where the counting verbs go (compilation and capability
        # negotiation stay on the local engine).  Any CountingSurface —
        # a session, a ServiceClient, a ShardedClient — slots in here.
        self.surface = surface if surface is not None else self.engine
        self.region_strategy = region_strategy

    def evaluate(
        self,
        first: DecisionTreeClassifier,
        second: DecisionTreeClassifier,
        *,
        deadline: float | None = None,
        budget: int | None = None,
    ) -> DiffMCResult:
        """The four agreement counts of ``first`` vs ``second``.

        ``deadline`` (wall-clock seconds) and ``budget`` (search nodes)
        bound each of the four counting problems individually; past a
        limit the count raises its typed abort (or degrades to the
        engine's configured fallback backend).
        """
        if first.n_features is None or second.n_features is None:
            raise RuntimeError("both trees must be fitted")
        if first.n_features != second.n_features:
            raise ValueError(
                f"feature mismatch: {first.n_features} vs {second.n_features}"
            )
        started = time.perf_counter()
        m = first.n_features
        paths1 = first.decision_paths()
        paths2 = second.decision_paths()
        true1 = self.engine.region(paths1, 1, m)
        false1 = self.engine.region(paths1, 0, m)

        if self.region_strategy == "per-path" and self.engine.capabilities.exact:
            # Decompose every count over the *second* tree's path cubes:
            # the two first-tree region CNFs are the only bases, so a
            # conditions_cubes backend compiles exactly two circuits and
            # serves all four counts (and any later sweep against the
            # same reference tree) by conditioning.
            from repro.core.tree2cnf import label_cubes

            cubes2_true = label_cubes(paths2, 1, m)
            cubes2_false = label_cubes(paths2, 0, m)
            problems = [
                CountRequest.from_cnf(
                    base,
                    strategy="per-path",
                    cubes=cubes,
                    deadline=deadline,
                    budget=budget,
                )
                for base, cubes in (
                    (true1, cubes2_true),
                    (true1, cubes2_false),
                    (false1, cubes2_true),
                    (false1, cubes2_false),
                )
            ]
        else:
            true2 = self.engine.region(paths2, 1, m)
            false2 = self.engine.region(paths2, 0, m)
            problems = [
                true1.conjoin(true2),
                true1.conjoin(false2),
                false1.conjoin(true2),
                false1.conjoin(false2),
            ]
            if deadline is not None or budget is not None:
                problems = [
                    CountRequest.from_cnf(cnf, deadline=deadline, budget=budget)
                    for cnf in problems
                ]
        tt, tf, ft, ff = (r.value for r in self.surface.solve_many(problems))
        result = DiffMCResult(
            tt=tt,
            tf=tf,
            ft=ft,
            ff=ff,
            num_inputs=m,
            elapsed_seconds=time.perf_counter() - started,
        )
        # The four regions partition the space — a cheap internal sanity
        # check that catches a mis-built region CNF immediately.  Only
        # meaningful for exact backends; approximate counts need not sum.
        if self.engine.capabilities.exact:
            if tt + tf + ft + ff != result.total:
                raise AssertionError(
                    "DiffMC counts do not partition the input space: "
                    f"{tt}+{tf}+{ft}+{ff} != 2^{m}"
                )
        return result
