"""MCMLSession: one facade over the whole MCML pipeline.

MCML's point is that one projected-#SAT substrate serves many consumers —
AccMC accuracy tables, DiffMC model-pair diffs, BNN quantification, the
paper's table drivers.  Before this facade each consumer wired its own
engine/config/store plumbing by hand; a session owns that plumbing once:

* one :class:`~repro.counting.engine.CountingEngine` over a backend chosen
  by registered name (:func:`repro.counting.api.make_backend`), carrying
  the scaling knobs (worker fan-out, disk-persistent count and compilation
  stores, shared component cache);
* one :class:`~repro.core.pipeline.MCMLPipeline` for dataset generation
  and model training, sharing the session seed;
* the metric entry points — :meth:`accmc`, :meth:`diffmc`, :meth:`bnnmc`,
  :meth:`count`/:meth:`solve` — and the artifact entry point
  :meth:`table`, which runs any of the paper's tables through this
  session's engine instead of a private one.

Quickstart::

    from repro.core.session import MCMLSession

    with MCMLSession(backend="exact", workers=4, cache_dir=".mcml-cache") as s:
        data = s.pipeline.make_dataset("PartialOrder", 4)
        train, test = data.split(0.10, rng=1)
        tree = s.pipeline.train("DT", train)
        result = s.accmc(tree, "PartialOrder", 4)   # whole-space metrics
        print(result.accuracy, s.engine.stats.as_dict())

Closing the session (or leaving the ``with`` block) releases the worker
pool and flushes the disk stores; every consumer built through the session
shares its caches, which is the point.

Thread-safety: the session is as thread-safe as its engine — ``solve``,
``solve_many``, ``count`` and the metric entry points may be called from
multiple threads concurrently (the counting service daemon does exactly
this), because :class:`~repro.counting.engine.CountingEngine` serializes
every solve under one re-entrant lock.  Concurrent callers get
bit-identical counts and a consistent
:class:`~repro.counting.api.EngineStats`; they do not get parallelism —
fan-out lives *inside* the engine (``workers``), not across calling
threads.
"""

from __future__ import annotations

from repro.core.accmc import AccMC, AccMCResult, GroundTruth
from repro.core.diffmc import DiffMC, DiffMCResult
from repro.counting.api import (
    Capabilities,
    CountingSurface,
    CountRequest,
    CountResult,
    make_backend,
)
from repro.counting.engine import CountingEngine, EngineConfig
from repro.logic.cnf import CNF
from repro.spec.properties import Property, get_property
from repro.spec.symmetry import SymmetryBreaking


class MCMLSession(CountingSurface):
    """Owns one engine + config + stores; fronts every MCML workflow.

    The session is the *in-process* implementation of
    :class:`~repro.counting.api.CountingSurface` — the counting surface
    drivers program against.  The remote implementations
    (:class:`~repro.counting.service.client.ServiceClient`,
    :class:`~repro.counting.service.cluster.ShardedClient`) are drop-in
    replacements for the counting verbs; pick by deployment, not by API.

    Parameters
    ----------
    backend:
        Registered backend name (``exact``, ``legacy``, ``brute``,
        ``bdd``, ``compiled``, ``approxmc`` or an alias); ``backend_opts``
        are passed to the factory.  Ignored when ``engine`` is supplied.
    engine:
        An existing :class:`CountingEngine` to adopt instead of building
        one — the session then shares (and on ``close()`` releases) it.
    workers / cache_dir / component_cache_mb / component_spill / circuit_store:
        The :class:`EngineConfig` scaling knobs (``component_spill``
        persists the component cache under ``cache_dir`` so component
        work survives session restarts; ``circuit_store`` persists the
        compiled circuits of a ``conditions_cubes`` backend the same way,
        so a warm restart conditions without a single recompilation.
        Both on by default; ``0``/``False`` opts out).
    fallback / fallback_opts:
        The degradation ladder: a registered backend name failed problems
        (budget, deadline, lost worker) are re-counted on, with explicit
        ``source="fallback"`` provenance on the results — e.g.
        ``fallback="approxmc"`` trades exactness for an answer when the
        exact backend cannot finish in budget.  ``None`` (default)
        disables it.  See :class:`EngineConfig`.
    deadline_grace / task_retries:
        Fault-tolerance knobs of the engine's worker pool: watchdog slack
        past a request's deadline before a wedged worker is killed, and
        re-dispatches granted to problems whose worker died.
    fanout_min_vars:
        Intra-problem fan-out threshold (``mcml --fanout-min-vars``):
        with ``workers > 1`` and a ``decomposes`` backend, one hard
        problem's independent components are counted through the worker
        pool and multiplied.  ``None`` (default) keeps single-problem
        counts in-process; see :class:`EngineConfig`.
    accmc_mode:
        Default AccMC construction (``"derived"`` or the paper's
        ``"product"``); overridable per :meth:`accmc` call.
    region_strategy:
        How AccMC and DiffMC count tree regions: ``"conjunction"``
        (default, the paper's one-problem-per-region construction) or
        ``"per-path"`` (``mc(φ∧τ) = Σ_paths mc(φ∧path)`` — sub-problems
        dedup across trees and, with ``cache_dir``, across sessions).
        On a ``conditions_cubes`` backend (``compiled``) the per-path
        sub-problems are answered by conditioning one cached circuit per
        base formula instead of independent counts.  Non-exact backends
        fall back to the conjunction route; both routes are
        bit-identical.
    seed:
        Master seed for dataset generation, splitting and training.
    """

    def __init__(
        self,
        backend: str = "exact",
        *,
        engine: CountingEngine | None = None,
        backend_opts: dict | None = None,
        workers: int = 1,
        cache_dir=None,
        component_cache_mb: float = 512.0,
        component_spill: bool = True,
        circuit_store: bool = True,
        fallback: str | None = None,
        fallback_opts: dict | None = None,
        deadline_grace: float = 5.0,
        task_retries: int = 2,
        fanout_min_vars: int | None = None,
        deadline: float | None = None,
        budget: int | None = None,
        accmc_mode: str = "derived",
        region_strategy: str = "conjunction",
        seed: int = 0,
    ) -> None:
        if engine is None:
            counter = make_backend(backend, **(backend_opts or {}))
            engine = CountingEngine(
                counter,
                config=EngineConfig(
                    workers=workers,
                    cache_dir=cache_dir,
                    component_cache_mb=component_cache_mb,
                    component_spill=component_spill,
                    circuit_store=circuit_store,
                    fallback=fallback,
                    fallback_opts=fallback_opts,
                    deadline_grace=deadline_grace,
                    task_retries=task_retries,
                    fanout_min_vars=fanout_min_vars,
                ),
            )
        self.engine = engine
        self.accmc_mode = accmc_mode
        self.region_strategy = region_strategy
        #: Session-wide default per-problem limits, applied by the metric
        #: entry points (:meth:`accmc`, :meth:`diffmc`) unless a call
        #: overrides them.
        self.deadline = deadline
        self.budget = budget
        self.seed = seed
        self._accmc: dict[str, AccMC] = {}
        self._diffmc: DiffMC | None = None
        self._pipeline = None

    # -- substrate passthroughs ------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return self.engine.backend_name

    @property
    def capabilities(self) -> Capabilities:
        return self.engine.capabilities

    def stats(self) -> dict:
        """JSON-safe telemetry payload (the :class:`CountingSurface` verb).

        Nests the engine counters under ``"engine"`` — the same shape
        ``mcml --stats`` and the service daemon's ``stats`` verb render,
        and the shape the remote surfaces aggregate across lanes/shards.
        For the live :class:`~repro.counting.api.EngineStats` object use
        ``session.engine.stats``.
        """
        return {
            "backend": self.backend_name,
            "capabilities": self.capabilities.as_dict(),
            "engine": self.engine.stats.as_dict(),
        }

    @property
    def store(self):
        """The disk-persistent count store, or None when not configured."""
        return self.engine.store

    @property
    def component_store(self):
        """The component-cache disk spill, or None when not configured."""
        return self.engine.component_store

    @property
    def circuit_store(self):
        """The compiled-circuit disk tier, or None when not configured."""
        return self.engine.circuit_store

    def solve(
        self, problem: CountRequest | CNF, *, on_failure: str = "raise"
    ) -> CountResult:
        """Typed count of one problem through the session engine."""
        return self.engine.solve(problem, on_failure=on_failure)

    def solve_many(self, problems, *, on_failure: str = "raise"):
        return self.engine.solve_many(problems, on_failure=on_failure)

    def count(self, problem: CountRequest | CNF) -> int:
        """Bare-int convenience over :meth:`solve`."""
        return self.engine.solve(problem).value

    def count_many(self, problems) -> list[int]:
        """Bare-int convenience over :meth:`solve_many`."""
        return [result.value for result in self.engine.solve_many(problems)]

    # -- consumers -------------------------------------------------------------------

    @property
    def pipeline(self):
        """The session's :class:`MCMLPipeline` (lazily built, engine-shared)."""
        if self._pipeline is None:
            from repro.core.pipeline import MCMLPipeline

            self._pipeline = MCMLPipeline(
                accmc_mode=self.accmc_mode,
                seed=self.seed,
                engine=self.engine,
                region_strategy=self.region_strategy,
            )
        return self._pipeline

    def run(self, *args, **kwargs):
        """One (property, model, split) experiment — see :meth:`MCMLPipeline.run`."""
        return self.pipeline.run(*args, **kwargs)

    def ground_truth(
        self,
        prop: Property | str,
        scope: int,
        symmetry: SymmetryBreaking | None = None,
    ) -> GroundTruth:
        """A compiled (and memoized) ground truth sharing this engine."""
        prop = get_property(prop) if isinstance(prop, str) else prop
        return self.engine.ground_truth(prop, scope, symmetry=symmetry)

    def _accmc_for(self, mode: str) -> AccMC:
        accmc = self._accmc.get(mode)
        if accmc is None:
            accmc = AccMC(
                mode=mode, engine=self.engine, region_strategy=self.region_strategy
            )
            self._accmc[mode] = accmc
        return accmc

    def accmc(
        self,
        tree,
        prop: Property | str,
        scope: int,
        symmetry: SymmetryBreaking | None = None,
        mode: str | None = None,
        deadline: float | None = None,
        budget: int | None = None,
    ) -> AccMCResult:
        """Whole-input-space confusion metrics of ``tree`` against a property.

        ``deadline``/``budget`` bound each counting problem individually
        (falling back to the session-wide defaults when omitted); see
        :meth:`AccMC.evaluate`.
        """
        ground_truth = self.ground_truth(prop, scope, symmetry=symmetry)
        return self._accmc_for(mode or self.accmc_mode).evaluate(
            tree,
            ground_truth,
            deadline=deadline if deadline is not None else self.deadline,
            budget=budget if budget is not None else self.budget,
        )

    def diffmc(
        self,
        first,
        second,
        deadline: float | None = None,
        budget: int | None = None,
    ) -> DiffMCResult:
        """Whole-space semantic difference between two decision trees."""
        if self._diffmc is None:
            self._diffmc = DiffMC(
                engine=self.engine, region_strategy=self.region_strategy
            )
        return self._diffmc.evaluate(
            first,
            second,
            deadline=deadline if deadline is not None else self.deadline,
            budget=budget if budget is not None else self.budget,
        )

    def bnnmc(
        self,
        bnn,
        prop: Property | str,
        scope: int,
        symmetry: SymmetryBreaking | None = None,
    ) -> AccMCResult:
        """AccMC for a binarized network (QuantifyML-style quantification)."""
        from repro.core.bnnmc import quantify_bnn

        return quantify_bnn(bnn, self.ground_truth(prop, scope, symmetry=symmetry))

    # -- artifacts -------------------------------------------------------------------

    def table(self, number: int, config=None, paper_scopes: bool = False) -> str:
        """Render one of the paper's tables through this session's engine.

        ``config`` is an :class:`repro.experiments.config.ExperimentConfig`
        (defaults to a fresh one with this session's seed); the driver
        modules are imported lazily so the core layer stays importable
        without the experiments package.
        """
        from repro.experiments import classification, generalization
        from repro.experiments import table1 as table1_mod
        from repro.experiments import table8 as table8_mod
        from repro.experiments import table9 as table9_mod
        from repro.experiments.config import ExperimentConfig

        if config is None:
            config = ExperimentConfig(seed=self.seed)
        if number == 1:
            return table1_mod.render(
                table1_mod.table1(config, paper_scopes=paper_scopes, session=self)
            )
        if number in (2, 4):
            rows = classification.classification_table(
                config, symmetry_breaking=number == 2, session=self
            )
            return classification.render(rows, symmetry_breaking=number == 2)
        if number in (3, 5, 6, 7):
            return generalization.render(
                generalization.generalization_table(number, config, session=self),
                number,
            )
        if number == 8:
            return table8_mod.render(table8_mod.table8(config, session=self))
        if number == 9:
            return table9_mod.render(table9_mod.table9(config, session=self))
        raise ValueError(f"unknown table {number!r} (1-9)")

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool and flush/close the disk stores."""
        self.engine.close()

    def __enter__(self) -> "MCMLSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MCMLSession(backend={self.backend_name!r}, "
            f"mode={self.accmc_mode!r}, seed={self.seed}, engine={self.engine!r})"
        )
