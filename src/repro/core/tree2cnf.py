"""Tree2CNF: decision-tree path logic → CNF (Section 4 of the paper).

A decision tree over binary features partitions the input space into paths;
the inputs predicted ``1`` are described by the DNF ``∨ ψ(pᵢ)`` over the
true-paths' path conditions.  Naively distributing that DNF into CNF blows
up, and Tseitin would add auxiliary variables that change model counts.

The paper instead uses Håstad's observation: because the paths *partition*
the space, the true-region is the complement of the false-region, so::

    CNF(true region)  =  ¬( ∨ over false paths ψ(q) )  =  ∧ ¬ψ(q)

and each ``¬ψ(q)`` — the negation of a conjunction of literals — is already
a clause.  The result is auxiliary-variable-free and linear in the number of
leaves: exactly one clause per opposite-label path, each clause no longer
than the tree depth.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.logic.cnf import CNF
from repro.logic.formula import And, Formula, Not, Or, Var
from repro.ml.decision_tree import DecisionTreeClassifier, TreePath


def _condition_literal(feature: int, value: bool) -> int:
    """DIMACS literal for "feature == value" (feature k ↔ variable k+1)."""
    return (feature + 1) if value else -(feature + 1)


def label_region_cnf(
    tree_or_paths: DecisionTreeClassifier | Sequence[TreePath],
    label: int,
    num_features: int,
) -> CNF:
    """CNF over the primary variables describing ``{x : tree(x) = label}``.

    One clause per path of the *opposite* label: the negation of that path's
    condition conjunction.  No auxiliary variables are introduced, so the
    result can be conjoined freely with other primary-variable CNFs (the
    ground truth, another tree's region) without renaming — the property
    AccMC and DiffMC both build on.
    """
    if label not in (0, 1):
        raise ValueError(f"label must be 0 or 1, got {label}")
    paths = _paths_of(tree_or_paths)
    cnf = CNF(num_vars=num_features, projection=range(1, num_features + 1))
    for path in paths:
        if path.label == label:
            continue
        for feature, _ in path.conditions:
            if feature >= num_features:
                raise ValueError(
                    f"path mentions feature {feature} but num_features={num_features}"
                )
        cnf.add_clause(
            [-_condition_literal(f, v) for f, v in path.conditions]
        )
    return cnf


def label_cubes(
    tree_or_paths: DecisionTreeClassifier | Sequence[TreePath],
    label: int,
    num_features: int | None = None,
) -> tuple[tuple[int, ...], ...]:
    """The unit cubes of the paths predicting ``label``.

    The paths partition the input space, so ``{x : tree(x) = label}`` is
    the *disjoint* union of these cubes and every region count decomposes
    as ``mc(φ ∧ region) = Σ_cubes mc(φ ∧ cube)`` — the per-path route
    (``CountRequest(strategy="per-path", cubes=...)``).  Each cube is the
    path's condition literals; conjoined as unit clauses they propagate in
    one sweep, and identical paths shared by different trees produce
    identical sub-problems that dedup in the engine's memo and stores.

    ``num_features``, when given, bounds the features the paths may
    mention — the same guard :func:`label_region_cnf` applies, so the two
    routes reject a malformed tree identically instead of the per-path
    sum silently counting a vacuous out-of-range unit.
    """
    if label not in (0, 1):
        raise ValueError(f"label must be 0 or 1, got {label}")
    paths = _paths_of(tree_or_paths)
    if num_features is not None:
        for path in paths:
            for feature, _ in path.conditions:
                if feature >= num_features:
                    raise ValueError(
                        f"path mentions feature {feature} but "
                        f"num_features={num_features}"
                    )
    return tuple(
        tuple(_condition_literal(f, v) for f, v in path.conditions)
        for path in paths
        if path.label == label
    )


def tree_paths_formula(
    tree_or_paths: DecisionTreeClassifier | Sequence[TreePath],
    label: int,
) -> Formula:
    """The DNF ``∨ ψ(pᵢ)`` over paths with the given label, as a formula.

    Used by tests to check :func:`label_region_cnf` semantically and by the
    documentation examples; the CNF route above is what the metrics use.
    """
    paths = _paths_of(tree_or_paths)
    disjuncts = []
    for path in paths:
        if path.label != label:
            continue
        literals = [
            Var(f + 1) if v else Not(Var(f + 1)) for f, v in path.conditions
        ]
        disjuncts.append(And(*literals))
    return Or(*disjuncts)


def path_count(tree: DecisionTreeClassifier, label: int) -> int:
    """Number of leaves predicting ``label`` (the t / f of Section 4)."""
    return sum(1 for p in tree.decision_paths() if p.label == label)


def _paths_of(
    tree_or_paths: DecisionTreeClassifier | Sequence[TreePath],
) -> Sequence[TreePath]:
    if isinstance(tree_or_paths, DecisionTreeClassifier):
        return tree_or_paths.decision_paths()
    return tree_or_paths
