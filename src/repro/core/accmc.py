"""AccMC: whole-input-space performance of a decision tree (Equations 1–4).

Given the ground truth φ (a relational property grounded at scope ``n``,
optionally symmetry-constrained) and a trained tree ``d`` with true-region
``τ`` and false-region ``ψ``::

    tp = mc(φ ∧ τ)      fp = mc(¬φ ∧ τ)
    fn = mc(φ ∧ ψ)      tn = mc(¬φ ∧ ψ)

over all 2^{n²} inputs.  Accuracy/precision/recall/F1 derive from the counts
(:class:`repro.ml.metrics.ConfusionCounts` handles the astronomically large
integers involved).

Two construction modes:

* ``mode="product"`` — the paper's construction: four counting problems,
  with ``¬φ`` obtained by negating the grounded formula before Tseitin.
* ``mode="derived"`` — counts ``φ∧τ``, ``φ`` and ``τ`` only and derives the
  rest from the partition identities ``fn = mc(φ) − tp``,
  ``fp = mc(τ) − tp``, ``tn = 2^{n²} − tp − fp − fn``.  Half the solver
  work; bit-identical results (enforced by tests).

Two region-counting *routes*, orthogonal to the mode:

* ``region_strategy="conjunction"`` (default) — each region count is one
  problem, the region CNF conjoined with φ (Håstad's
  one-clause-per-opposite-path construction).
* ``region_strategy="per-path"`` — each region count decomposes into its
  disjoint path cubes, ``mc(φ∧τ) = Σ_paths mc(φ∧path)``: the engine
  expands a ``CountRequest(strategy="per-path")`` into one φ-plus-unit-cube
  sub-problem per path.  Unit cubes propagate in one sweep, and paths
  shared between trees (retrained models overlap heavily) produce
  *identical* sub-problems that dedup through the engine's memo and disk
  stores — with a warm component spill this turns repeated-φ sweeps into
  cache assembly.  Sub-counts sum exactly, so the route needs an exact
  backend; others fall back to the conjunction route.  Both routes are
  bit-identical by the partition argument (and enforced by tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from collections.abc import Callable

from repro.counting.api import CountRequest
from repro.counting.engine import CountingEngine, EngineConfig, shared_engine
from repro.logic.cnf import CNF
from repro.logic.formula import Formula, TRUE
from repro.logic.tseitin import tseitin_cnf
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.metrics import ConfusionCounts
from repro.spec.properties import Property
from repro.spec.symmetry import SymmetryBreaking
from repro.spec.translate import RelationalProblem, translate


@dataclass(frozen=True)
class AccMCResult:
    """Whole-space confusion counts plus provenance."""

    property_name: str
    scope: int
    counts: ConfusionCounts
    mode: str
    counter: str
    elapsed_seconds: float

    @property
    def accuracy(self) -> float:
        return self.counts.accuracy

    @property
    def precision(self) -> float:
        return self.counts.precision

    @property
    def recall(self) -> float:
        return self.counts.recall

    @property
    def f1(self) -> float:
        return self.counts.f1

    def as_row(self) -> dict[str, float]:
        """The four φ-columns of Tables 3/5/6/7."""
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "time": self.elapsed_seconds,
        }


@dataclass
class GroundTruth:
    """A compiled ground truth φ (and lazily, ¬φ) at a fixed scope.

    When symmetry breaking is active, *both* φ and ¬φ are conjoined with the
    lex-leader constraints: the paper evaluates inside the symmetry-reduced
    space (Table 3's footnote), so the four confusion counts sum to the size
    of that reduced space, not 2^{n²}.
    """

    prop: Property
    scope: int
    symmetry: SymmetryBreaking | None = None
    #: Compilation function — a :class:`CountingEngine`'s memoized
    #: ``translate`` when the ground truth is built through one, the plain
    #: :func:`repro.spec.translate.translate` otherwise.
    translator: Callable[..., RelationalProblem] | None = field(
        default=None, repr=False
    )
    _positive: RelationalProblem | None = field(default=None, repr=False)
    _negative: RelationalProblem | None = field(default=None, repr=False)
    _space_cnf: CNF | None = field(default=None, repr=False)

    @property
    def num_primary(self) -> int:
        return self.scope * self.scope

    def _translate(self, **kwargs) -> RelationalProblem:
        fn = self.translator if self.translator is not None else translate
        return fn(self.prop, self.scope, symmetry=self.symmetry, **kwargs)

    def positive(self) -> RelationalProblem:
        if self._positive is None:
            self._positive = self._translate()
        return self._positive

    def negative(self) -> RelationalProblem:
        if self._negative is None:
            self._negative = self._translate(negate=True)
        return self._negative

    def space_formula(self) -> Formula:
        """The evaluation space: symmetry constraints, or TRUE (everything)."""
        if self.symmetry is None:
            return TRUE
        return self.symmetry.formula(self.scope)

    def space_cnf(self) -> CNF:
        if self._space_cnf is None:
            m = self.num_primary
            self._space_cnf = tseitin_cnf(self.space_formula(), num_input_vars=m)
        return self._space_cnf


class AccMC:
    """Quantify a decision tree against a ground truth, via model counting.

    ``counter`` is any backend satisfying
    :class:`repro.counting.api.CounterBackend` — build one by registered
    name with :func:`repro.counting.api.make_backend` (``"exact"``, the
    ProjMC stand-in, is the default).  The backend's declared capabilities
    pick the evaluation route: formula-counting backends take the
    vectorised sweep, the rest the paper's CNF construction.

    ``surface`` routes the *counting* verbs (``solve``/``solve_many``)
    through any :class:`~repro.counting.api.CountingSurface` — a remote
    :class:`~repro.counting.service.client.ServiceClient` or
    :class:`~repro.counting.service.cluster.ShardedClient` — while
    compilation (translation, region CNFs, capability negotiation) stays
    on the local engine.  Default: the engine itself.
    """

    def __init__(
        self,
        counter=None,
        mode: str = "product",
        engine: CountingEngine | None = None,
        config: EngineConfig | None = None,
        region_strategy: str = "conjunction",
        surface=None,
    ) -> None:
        if mode not in ("product", "derived"):
            raise ValueError(f"unknown mode {mode!r}")
        if region_strategy not in ("conjunction", "per-path"):
            raise ValueError(f"unknown region strategy {region_strategy!r}")
        # All counting goes through a shared memoizing engine: repeated
        # regions, translations and counts (across evaluate() calls, rows
        # of a table, or tables sharing a pipeline) are computed once.
        # ``config`` (worker fan-out, disk cache) applies only when a new
        # engine is built here; a passed-in engine keeps its own.
        self.engine = engine if engine is not None else shared_engine(counter, config)
        self.counter = self.engine
        #: Where the counting verbs go (compilation stays on the engine).
        self.surface = surface if surface is not None else self.engine
        self.mode = mode
        self.region_strategy = region_strategy
        # The symmetry-reduced space size is tree- and property-independent;
        # cache it across evaluate() calls (one table = 16 properties at the
        # same scope).
        self._space_count_cache: dict[tuple[int, str], int] = {}

    def ground_truth(
        self,
        prop: Property,
        scope: int,
        symmetry: SymmetryBreaking | None = None,
    ) -> GroundTruth:
        """A compiled (and memoized) ground truth sharing this engine."""
        return self.engine.ground_truth(prop, scope, symmetry=symmetry)

    def evaluate(
        self,
        tree: DecisionTreeClassifier,
        ground_truth: GroundTruth,
        *,
        deadline: float | None = None,
        budget: int | None = None,
    ) -> AccMCResult:
        """Whole-space confusion metrics of ``tree`` against ``ground_truth``.

        ``deadline`` (wall-clock seconds) and ``budget`` (search nodes)
        apply *per counting problem* on the CNF route: each confusion
        count becomes a limited :class:`~repro.counting.api.CountRequest`,
        so an intractable region raises
        :class:`~repro.counting.exact.CounterTimeout` /
        :class:`~repro.counting.exact.CounterBudgetExceeded` (or degrades
        to the engine's configured fallback backend) instead of running
        unbounded.  The formula-sweep route has no search loop to
        interrupt and ignores both knobs.
        """
        started = time.perf_counter()
        m = ground_truth.num_primary
        if tree.n_features != m:
            raise ValueError(
                f"tree has {tree.n_features} features but scope "
                f"{ground_truth.scope} needs {m}"
            )
        paths = tree.decision_paths()
        caps = self.engine.capabilities
        if not caps.counts_formulas and not caps.supports_projection:
            # Fail at the routing layer, not deep inside the backend: the
            # CNF route conjoins Tseitin formulas with auxiliaries, which
            # projection-incapable backends (bdd, compiled) cannot serve.
            # ``compiled``'s cube conditioning is consumed by DiffMC and
            # per-path region counting, whose bases are auxiliary-free.
            raise ValueError(
                f"backend {self.engine.backend_name!r} can serve neither AccMC "
                "route: it counts no formulas and rejects CNFs with auxiliary "
                "variables (capabilities.counts_formulas and "
                ".supports_projection are both False)"
            )
        if caps.counts_formulas:
            # Vectorised-sweep backend: counts the pre-Tseitin formulas
            # directly, sidestepping CNF structure sensitivity entirely.
            counts = self._evaluate_by_formula(
                ground_truth,
                self.engine.region(paths, 1, m),
                self.engine.region(paths, 0, m),
                m,
            )
        else:
            # Region CNFs are compiled inside the route: the per-path
            # branch works from the raw path cubes and never needs them.
            counts = self._evaluate_by_cnf(
                ground_truth, m, paths, deadline=deadline, budget=budget
            )
        return AccMCResult(
            property_name=ground_truth.prop.name,
            scope=ground_truth.scope,
            counts=counts,
            mode=self.mode,
            counter=self.engine.backend_name,
            elapsed_seconds=time.perf_counter() - started,
        )

    def count_region(self, cnf: CNF) -> int:
        """Expose the backend count (used by experiments for Table 1)."""
        return self.surface.solve(cnf).value

    def _space_count(self, ground_truth: GroundTruth, compute) -> int:
        if ground_truth.symmetry is None:
            return 1 << ground_truth.num_primary
        key = (ground_truth.scope, ground_truth.symmetry.kind)
        if key not in self._space_count_cache:
            self._space_count_cache[key] = compute()
        return self._space_count_cache[key]

    # -- backend-specific constructions --------------------------------------------

    def _use_per_path(self) -> bool:
        """Negotiate the per-path route against the backend's contract.

        Per-path sums sub-counts, which is only sound for exact backends
        (summed (ε, δ) estimates compound their error); anything else
        falls back to the conjunction construction.
        """
        return self.region_strategy == "per-path" and self.engine.capabilities.exact

    def _evaluate_by_cnf(
        self,
        ground_truth: GroundTruth,
        m: int,
        paths,
        deadline: float | None = None,
        budget: int | None = None,
    ) -> ConfusionCounts:
        """The paper's pipeline: conjoin CNFs, hand them to the counting engine.

        Counting goes through the typed ``solve_many`` path, so every
        confusion count carries backend/cache provenance on the way in.
        With the per-path route negotiated, each region problem is a
        ``strategy="per-path"`` request over the region's path cubes and
        no region CNF is ever compiled; otherwise the memoized region
        compilations are conjoined as before — same values (the cubes
        partition the region), different decomposition.
        """
        from repro.core.tree2cnf import label_cubes

        phi = ground_truth.positive().cnf
        per_path = self._use_per_path()
        if per_path:
            true_arg = label_cubes(paths, 1, m)
            false_arg = label_cubes(paths, 0, m)

            def region_problem(base: CNF, cubes) -> CountRequest:
                return CountRequest.from_cnf(
                    base,
                    strategy="per-path",
                    cubes=cubes,
                    deadline=deadline,
                    budget=budget,
                )

        elif deadline is None and budget is None:
            true_arg = self.engine.region(paths, 1, m)
            false_arg = self.engine.region(paths, 0, m)

            def region_problem(base: CNF, region: CNF) -> CNF:
                return base.conjoin(region)

        else:
            true_arg = self.engine.region(paths, 1, m)
            false_arg = self.engine.region(paths, 0, m)

            def region_problem(base: CNF, region: CNF) -> CountRequest:
                return CountRequest.from_cnf(
                    base.conjoin(region), deadline=deadline, budget=budget
                )
        if self.mode == "product":
            not_phi = ground_truth.negative().cnf
            tp, fp, fn, tn = (
                r.value
                for r in self.surface.solve_many(
                    [
                        region_problem(phi, true_arg),
                        region_problem(not_phi, true_arg),
                        region_problem(phi, false_arg),
                        region_problem(not_phi, false_arg),
                    ]
                )
            )
        else:
            space = ground_truth.space_cnf()
            phi_problem = (
                phi
                if deadline is None and budget is None
                else CountRequest.from_cnf(phi, deadline=deadline, budget=budget)
            )
            tp, phi_count, tau_count = (
                r.value
                for r in self.surface.solve_many(
                    [
                        region_problem(phi, true_arg),
                        phi_problem,
                        region_problem(space, true_arg),
                    ]
                )
            )
            space_count = self._space_count(
                ground_truth, lambda: self.surface.solve(space).value
            )
            fn = phi_count - tp
            fp = tau_count - tp
            tn = space_count - tp - fp - fn
        return ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)

    def _evaluate_by_formula(
        self, ground_truth: GroundTruth, true_region: CNF, false_region: CNF, m: int
    ) -> ConfusionCounts:
        """Formula-sweep route for backends exposing ``count_formula``."""
        from repro.logic.formula import And, Not, Or, Var, all_of

        def region_formula(cnf: CNF):
            return all_of(
                Or(*(Var(l) if l > 0 else Not(Var(-l)) for l in clause))
                for clause in cnf.clauses
            )

        phi_f = ground_truth.positive().formula
        space_f = ground_truth.space_formula()
        tau_f = region_formula(true_region)
        count = lambda f: self.engine.solve_formula(f, m).value  # noqa: E731
        tp = count(And(phi_f, tau_f))
        if self.mode == "product":
            # ¬φ stays inside the evaluation space (symmetry constraints);
            # the negative problem is compiled exactly that way.
            not_phi_f = ground_truth.negative().formula
            psi_f = region_formula(false_region)
            fp = count(And(not_phi_f, tau_f))
            fn = count(And(phi_f, psi_f))
            tn = count(And(not_phi_f, psi_f))
        else:
            phi_count = count(phi_f)
            tau_count = count(And(space_f, tau_f))
            space_count = self._space_count(ground_truth, lambda: count(space_f))
            fn = phi_count - tp
            fp = tau_count - tp
            tn = space_count - tp - fp - fn
        return ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)
