"""Whole-space quantification of binarized neural networks.

The generalisation the paper's §2 sketches: once any classifier admits a
propositional translation, the AccMC/DiffMC metrics apply unchanged.  For a
:class:`~repro.ml.bnn.BinarizedMLP`, :meth:`to_formula` yields the positive
region directly as a formula, so the counting problems are formula
conjunctions; they are solved by the vectorised sweep (exact at reduced
scopes) or via Tseitin + the exact counter.
"""

from __future__ import annotations

import time

from repro.core.accmc import AccMCResult, GroundTruth
from repro.core.diffmc import DiffMCResult
from repro.counting.vector import count_formula
from repro.logic.formula import And, Formula, Not
from repro.ml.bnn import BinarizedMLP
from repro.ml.metrics import ConfusionCounts


def _region(model_or_formula) -> Formula:
    if isinstance(model_or_formula, BinarizedMLP):
        return model_or_formula.to_formula()
    if isinstance(model_or_formula, Formula):
        return model_or_formula
    raise TypeError(
        "expected a BinarizedMLP or a region formula, got "
        f"{type(model_or_formula).__name__}"
    )


def quantify_bnn(
    bnn: BinarizedMLP | Formula,
    ground_truth: GroundTruth,
) -> AccMCResult:
    """AccMC for a binarized network: whole-space confusion counts."""
    started = time.perf_counter()
    m = ground_truth.num_primary
    region = _region(bnn)
    phi = ground_truth.positive().formula
    space = ground_truth.space_formula()

    tp = count_formula(And(phi, region), m)
    phi_count = count_formula(phi, m)
    tau_count = count_formula(And(space, region), m)
    space_count = count_formula(space, m) if ground_truth.symmetry else (1 << m)
    fn = phi_count - tp
    fp = tau_count - tp
    tn = space_count - tp - fp - fn
    return AccMCResult(
        property_name=ground_truth.prop.name,
        scope=ground_truth.scope,
        counts=ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn),
        mode="derived",
        counter="brute",
        elapsed_seconds=time.perf_counter() - started,
    )


def diff_bnn(
    first: BinarizedMLP | Formula,
    second: BinarizedMLP | Formula,
    num_inputs: int,
) -> DiffMCResult:
    """DiffMC between two models given by regions over the same inputs.

    Either argument may be a binarized network or any positive-region
    formula (e.g. a decision tree's, via
    :func:`repro.core.tree2cnf.tree_paths_formula`) — so this also compares
    a BNN against a tree, the cross-model-family question the paper's
    "model upgrade" discussion raises.
    """
    started = time.perf_counter()
    r1 = _region(first)
    r2 = _region(second)
    tt = count_formula(And(r1, r2), num_inputs)
    tf = count_formula(And(r1, Not(r2)), num_inputs)
    ft = count_formula(And(Not(r1), r2), num_inputs)
    ff = (1 << num_inputs) - tt - tf - ft
    return DiffMCResult(
        tt=tt,
        tf=tf,
        ft=ft,
        ff=ff,
        num_inputs=num_inputs,
        elapsed_seconds=time.perf_counter() - started,
    )
