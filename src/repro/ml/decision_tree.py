"""CART decision-tree classifier.

The tree is the model MCML quantifies, so beyond ordinary fit/predict it
exposes its *paths*: every leaf yields the conjunction of branch conditions
leading to it plus the predicted label (:class:`TreePath`), which
:mod:`repro.core.tree2cnf` turns into CNF.

Splits use the gini criterion on a threshold test ``x[f] <= t``; for the
study's 0/1 features the only sensible threshold is 0.5, which makes the
branch conditions pure literals — the property Section 4 of the paper relies
on.  Thresholds are found for arbitrary numeric features anyway (midpoints
of consecutive observed values) so the model is generally usable.

Supports ``sample_weight`` (needed by AdaBoost), ``max_features`` (needed by
random forests) and the usual depth/min-samples regularisers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_Xy


@dataclass
class TreeNode:
    """Internal representation; leaves have ``feature is None``."""

    feature: int | None = None
    threshold: float = 0.5
    left: "TreeNode | None" = None  # x[feature] <= threshold
    right: "TreeNode | None" = None  # x[feature] >  threshold
    label: int = 0
    weight: tuple[float, float] = (0.0, 0.0)  # class-weight totals at node

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass(frozen=True)
class TreePath:
    """One root-to-leaf path.

    ``conditions`` holds ``(feature, value)`` pairs meaning "binary feature
    ``feature`` equals ``value`` on this path"; ``label`` is the leaf's
    prediction.  Only meaningful for trees trained on binary features —
    :meth:`DecisionTreeClassifier.decision_paths` enforces that.
    """

    conditions: tuple[tuple[int, bool], ...]
    label: int


class DecisionTreeClassifier(BaseClassifier):
    """CART with gini impurity.

    Parameters mirror scikit-learn's defaults: unlimited depth, split while
    at least 2 samples and positive impurity decrease.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root: TreeNode | None = None
        self.n_features: int | None = None

    # -- training ------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        if sample_weight is None:
            weight = np.ones(len(y))
        else:
            weight = np.asarray(sample_weight, dtype=np.float64)
            if weight.shape != y.shape:
                raise ValueError("sample_weight shape mismatch")
            if (weight < 0).any():
                raise ValueError("sample_weight must be non-negative")
        self.n_features = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._n_subset = self._resolve_max_features(X.shape[1])
        self.root = self._build(X, y, weight, depth=0)
        return self

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            if not 1 <= self.max_features <= n_features:
                raise ValueError("max_features out of range")
            return self.max_features
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def _build(
        self, X: np.ndarray, y: np.ndarray, weight: np.ndarray, depth: int
    ) -> TreeNode:
        w_pos = float(weight[y == 1].sum())
        w_neg = float(weight[y == 0].sum())
        node = TreeNode(label=int(w_pos >= w_neg), weight=(w_neg, w_pos))

        if (
            w_pos == 0.0
            or w_neg == 0.0
            or len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        split = self._best_split(X, y, weight)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], weight[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], weight[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, weight: np.ndarray
    ) -> tuple[int, float] | None:
        n_features = X.shape[1]
        if self._n_subset < n_features:
            candidates = self._rng.choice(n_features, size=self._n_subset, replace=False)
        else:
            candidates = np.arange(n_features)

        total_w = weight.sum()
        total_pos = (weight * y).sum()
        parent_gini = _gini(total_pos, total_w)

        best: tuple[float, int, float] | None = None
        for feature in candidates:
            column = X[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = column <= threshold
                w_left = weight[mask].sum()
                w_right = total_w - w_left
                if w_left == 0 or w_right == 0:
                    continue
                pos_left = (weight[mask] * y[mask]).sum()
                pos_right = total_pos - pos_left
                split_gini = (
                    w_left * _gini(pos_left, w_left)
                    + w_right * _gini(pos_right, w_right)
                ) / total_w
                gain = parent_gini - split_gini
                if gain <= 1e-12:
                    continue
                key = (split_gini, int(feature), float(threshold))
                if best is None or key < best:
                    best = key
        if best is None:
            return None
        return best[1], best[2]

    # -- inference ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X, self.n_features)
        assert self.root is not None
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.label
        return out

    # -- structure ------------------------------------------------------------------

    def decision_paths(self) -> list[TreePath]:
        """All root-to-leaf paths as literal conjunctions.

        Requires the tree to be a *binary-feature* tree (every threshold in
        (0, 1)), which is always the case on adjacency-matrix data.
        """
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        paths: list[TreePath] = []

        def walk(node: TreeNode, conditions: list[tuple[int, bool]]) -> None:
            if node.is_leaf:
                paths.append(TreePath(tuple(conditions), node.label))
                return
            if not 0.0 < node.threshold < 1.0:
                raise ValueError(
                    "decision_paths requires binary features; found threshold "
                    f"{node.threshold} on feature {node.feature}"
                )
            assert node.left is not None and node.right is not None
            walk(node.left, conditions + [(node.feature, False)])
            walk(node.right, conditions + [(node.feature, True)])

        walk(self.root, [])
        return paths

    def n_leaves(self) -> int:
        return len(self._leaves())

    def depth(self) -> int:
        def go(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(go(node.left), go(node.right))

        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return go(self.root)

    def _leaves(self) -> list[TreeNode]:
        assert self.root is not None
        leaves = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend((node.left, node.right))
        return leaves


def _gini(weight_pos: float, weight_total: float) -> float:
    """Gini impurity of a node with the given positive/total weights."""
    if weight_total <= 0:
        return 0.0
    p = weight_pos / weight_total
    return 2.0 * p * (1.0 - p)
