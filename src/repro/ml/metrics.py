"""Classification metrics.

The four metrics of the paper (Section 5): accuracy, precision, recall and
F1-score, all derived from a confusion matrix.  :class:`ConfusionCounts` is
shared between the traditional test-set evaluation (counts are small ints)
and MCML's whole-space evaluation (counts are model counts and can exceed
2^400 — Python ints make this a non-issue, which is one quiet advantage of
this stack over the original).

Division-by-zero convention: a metric whose denominator is zero is reported
as 0.0, matching the paper's tables (e.g. precision 0.0000 when a tree
predicts no positives correctly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionCounts:
    """Confusion-matrix counts; arbitrary-precision by design."""

    tp: int
    fp: int
    tn: int
    fn: int

    def __post_init__(self) -> None:
        for name in ("tp", "fp", "tn", "fn"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return _ratio(self.tp + self.tn, self.total)

    @property
    def precision(self) -> float:
        return _ratio(self.tp, self.tp + self.fp)

    @property
    def recall(self) -> float:
        return _ratio(self.tp, self.tp + self.fn)

    @property
    def f1(self) -> float:
        precision = self.precision
        recall = self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def as_dict(self) -> dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            self.tp + other.tp,
            self.fp + other.fp,
            self.tn + other.tn,
            self.fn + other.fn,
        )


def _ratio(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return 0.0
    # int/int keeps full precision until the final float conversion; for the
    # astronomically large MCML counts use a Fraction-free two-step to avoid
    # float overflow.
    if max(numerator, denominator) > 2**52:
        # Scale down by the denominator's bit length; precision loss is far
        # below the 4 decimal places the tables report.
        shift = max(denominator.bit_length() - 52, 0)
        numerator >>= shift
        denominator >>= shift
        if denominator == 0:
            return 0.0
    return numerator / denominator


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionCounts:
    """Confusion counts for 0/1 label arrays."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return ConfusionCounts(
        tp=int((y_true & y_pred).sum()),
        fp=int((~y_true & y_pred).sum()),
        tn=int((~y_true & ~y_pred).sum()),
        fn=int((y_true & ~y_pred).sum()),
    )


def classification_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, float]:
    """The paper's four metrics as a dict."""
    return confusion_counts(y_true, y_pred).as_dict()
