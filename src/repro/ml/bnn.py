"""Binarized neural networks.

The paper's related-work section points out that MCML's metrics generalise
beyond decision trees to any model with a CNF translation — naming
binarized neural networks (Narodytska et al.'s encoding) explicitly.  This
module supplies that extension end to end:

* :class:`BinarizedMLP` — a multi-layer perceptron with ±1 weights and
  sign activations, trained with the straight-through estimator (latent
  real-valued weights, binarized forward pass);
* :func:`threshold_formula` — compiles "at least T of these literals hold"
  to a propositional formula by a shared dynamic program (O(n·T) nodes);
* :meth:`BinarizedMLP.to_formula` — the whole network as a formula over the
  input variables, composable with :mod:`repro.core.bnnmc` for whole-space
  AccMC/DiffMC quantification.

A binarized neuron over 0/1 inputs is exactly a threshold gate: with
weights w ∈ {−1,+1}ᵈ and bias b, it fires iff the number of *agreements*
(inputs equal to their weight's sign) reaches an integer threshold — so the
translation is a pure counting circuit and every auxiliary introduced by
Tseitin stays biconditionally defined.
"""

from __future__ import annotations

import numpy as np

from repro.logic.formula import And, FALSE, Formula, Not, Or, TRUE, Var
from repro.ml.base import BaseClassifier, check_X, check_Xy


def threshold_formula(literals: list[Formula], threshold: int) -> Formula:
    """Formula for ``popcount(literals) >= threshold``.

    Built by the monotone DP  ``f(i,t) = (lᵢ ∧ f(i+1,t−1)) ∨ f(i+1,t)``
    with memoisation — shared subformulas keep the result O(n·t) in size.
    """
    n = len(literals)
    memo: dict[tuple[int, int], Formula] = {}

    def go(index: int, needed: int) -> Formula:
        if needed <= 0:
            return TRUE
        if needed > n - index:
            return FALSE
        key = (index, needed)
        hit = memo.get(key)
        if hit is None:
            lit = literals[index]
            # Monotonicity makes the ITE collapse: needing `needed` from the
            # suffix already implies needing `needed-1`, so the ¬lit guard
            # on the second disjunct is redundant.
            hit = Or(And(lit, go(index + 1, needed - 1)), go(index + 1, needed))
            memo[key] = hit
        return hit

    return go(0, threshold)


def neuron_formula(
    inputs: list[Formula], weights: np.ndarray, bias: float
) -> Formula:
    """One binarized neuron as a formula over 0/1-valued input formulas.

    The neuron computes ``sign(Σ wᵢ·(2xᵢ−1) + b) >= 0``.  Rewriting via the
    agreement count A = Σ_{wᵢ=+1} xᵢ + Σ_{wᵢ=−1} (1−xᵢ):

        fire  ⟺  2A − d + b ≥ 0  ⟺  A ≥ ⌈(d − b) / 2⌉.
    """
    if len(inputs) != len(weights):
        raise ValueError("weights/inputs length mismatch")
    d = len(weights)
    literals = [
        inputs[i] if weights[i] > 0 else Not(inputs[i]) for i in range(d)
    ]
    threshold = int(np.ceil((d - bias) / 2.0))
    return threshold_formula(literals, threshold)


class BinarizedMLP(BaseClassifier):
    """An MLP with ±1 weights and hard sign activations.

    Training uses the straight-through estimator: gradients flow through
    the binarization as if it were the identity, updates apply to latent
    real weights, and the forward pass always binarizes.  Biases stay real
    (they only shift the integer threshold of the compiled gate).
    """

    def __init__(
        self,
        hidden_units: int = 16,
        learning_rate: float = 0.05,
        epochs: int = 150,
        batch_size: int = 64,
        random_state: int | None = 0,
    ) -> None:
        if hidden_units < 1:
            raise ValueError("hidden_units must be >= 1")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.random_state = random_state
        self.n_features: int | None = None
        self._latent_w1: np.ndarray | None = None
        self._latent_w2: np.ndarray | None = None
        self._b1: np.ndarray | None = None
        self._b2: float = 0.0

    # -- binarization helpers ---------------------------------------------------

    @staticmethod
    def _sign(w: np.ndarray) -> np.ndarray:
        return np.where(w >= 0, 1.0, -1.0)

    def _forward(self, X: np.ndarray):
        """Forward pass on ±1-encoded inputs; returns (hidden, output raw)."""
        w1 = self._sign(self._latent_w1)
        w2 = self._sign(self._latent_w2)
        pre_hidden = X @ w1 + self._b1
        hidden = np.where(pre_hidden >= 0, 1.0, -1.0)
        raw = hidden @ w2 + self._b2
        return pre_hidden, hidden, raw

    # -- training -----------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinarizedMLP":
        X, y = check_Xy(X, y)
        self.n_features = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        Xpm = 2.0 * X - 1.0  # {0,1} -> {-1,+1}
        target = 2.0 * y - 1.0

        self._latent_w1 = rng.normal(0, 0.5, size=(X.shape[1], self.hidden_units))
        self._latent_w2 = rng.normal(0, 0.5, size=self.hidden_units)
        self._b1 = np.zeros(self.hidden_units)
        self._b2 = 0.0

        n = X.shape[0]
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                rows = order[start : start + batch]
                xb, tb = Xpm[rows], target[rows]
                pre_hidden, hidden, raw = self._forward(xb)
                # Hinge-style error on the raw output.
                margin = tb * raw
                active = margin < 1.0
                if not active.any():
                    continue
                grad_raw = -(tb * active) / len(rows)
                w2 = self._sign(self._latent_w2)
                grad_w2 = hidden.T @ grad_raw
                grad_b2 = grad_raw.sum()
                # Straight-through: sign'(z) ≈ 1 inside the clip region.
                grad_hidden = np.outer(grad_raw, w2)
                grad_hidden *= np.abs(pre_hidden) <= 1.0
                grad_w1 = xb.T @ grad_hidden
                grad_b1 = grad_hidden.sum(axis=0)
                self._latent_w2 -= self.learning_rate * grad_w2
                self._b2 -= self.learning_rate * grad_b2
                self._latent_w1 -= self.learning_rate * grad_w1
                self._b1 -= self.learning_rate * grad_b1
                np.clip(self._latent_w1, -1.5, 1.5, out=self._latent_w1)
                np.clip(self._latent_w2, -1.5, 1.5, out=self._latent_w2)
        return self

    # -- inference ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X, self.n_features)
        if self._latent_w1 is None:
            raise RuntimeError("model is not fitted")
        _, _, raw = self._forward(2.0 * X - 1.0)
        return (raw >= 0).astype(np.int64)

    # -- compilation ------------------------------------------------------------------

    def to_formula(self, input_vars: list[Formula] | None = None) -> Formula:
        """The network's positive-class region as a propositional formula.

        ``input_vars`` defaults to ``Var(1) … Var(n_features)`` — the same
        numbering the relational ground truths use, so the result can be
        conjoined/counted directly against them.
        """
        if self._latent_w1 is None:
            raise RuntimeError("model is not fitted")
        if input_vars is None:
            input_vars = [Var(k + 1) for k in range(self.n_features or 0)]
        if len(input_vars) != self.n_features:
            raise ValueError(f"expected {self.n_features} input formulas")
        w1 = self._sign(self._latent_w1)
        w2 = self._sign(self._latent_w2)
        hidden_formulas = [
            neuron_formula(input_vars, w1[:, j], float(self._b1[j]))
            for j in range(self.hidden_units)
        ]
        return neuron_formula(hidden_formulas, w2, float(self._b2))
