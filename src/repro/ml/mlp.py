"""Multi-layer perceptron for binary classification.

One ReLU hidden layer (100 units), sigmoid output, binary cross-entropy,
mini-batch Adam — scikit-learn's MLPClassifier defaults, trimmed to the
binary case.  Training stops at ``max_iter`` epochs or when the loss
improves by less than ``tol`` for ``n_iter_no_change`` consecutive epochs.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_Xy


class MLPClassifier(BaseClassifier):
    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (100,),
        learning_rate: float = 1e-3,
        batch_size: int = 200,
        max_iter: int = 200,
        alpha: float = 1e-4,
        tol: float = 1e-4,
        n_iter_no_change: int = 10,
        random_state: int | None = 0,
    ) -> None:
        if not hidden_layer_sizes or any(h < 1 for h in hidden_layer_sizes):
            raise ValueError("hidden_layer_sizes must be positive")
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.alpha = alpha  # L2 penalty
        self.tol = tol
        self.n_iter_no_change = n_iter_no_change
        self.random_state = random_state
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        self.loss_curve_: list[float] = []
        self.n_features: int | None = None

    # -- training -------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = check_Xy(X, y)
        self.n_features = X.shape[1]
        rng = np.random.default_rng(self.random_state)

        sizes = [X.shape[1], *self.hidden_layer_sizes, 1]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # Glorot-uniform, as in scikit-learn.
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

        # Adam state.
        m_w = [np.zeros_like(w) for w in self.weights_]
        v_w = [np.zeros_like(w) for w in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = X.shape[0]
        batch = min(self.batch_size, n)
        target = y.astype(np.float64).reshape(-1, 1)
        best_loss = np.inf
        stall = 0
        self.loss_curve_ = []

        for _ in range(self.max_iter):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                rows = order[start : start + batch]
                xb, yb = X[rows], target[rows]

                # Forward.
                activations = [xb]
                pre_acts = []
                h = xb
                for layer, (w, b) in enumerate(zip(self.weights_, self.biases_)):
                    z = h @ w + b
                    pre_acts.append(z)
                    h = _sigmoid(z) if layer == len(self.weights_) - 1 else np.maximum(z, 0)
                    activations.append(h)
                prob = activations[-1]
                epoch_loss += float(_log_loss(yb, prob)) * len(rows)

                # Backward.
                delta = (prob - yb) / len(rows)
                grads_w = [np.zeros(0)] * len(self.weights_)
                grads_b = [np.zeros(0)] * len(self.biases_)
                for layer in range(len(self.weights_) - 1, -1, -1):
                    grads_w[layer] = activations[layer].T @ delta + self.alpha * self.weights_[layer] / n
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (pre_acts[layer - 1] > 0)

                # Adam update.
                step += 1
                for layer in range(len(self.weights_)):
                    for grad, m, v, param in (
                        (grads_w[layer], m_w, v_w, self.weights_),
                        (grads_b[layer], m_b, v_b, self.biases_),
                    ):
                        m[layer] = beta1 * m[layer] + (1 - beta1) * grad
                        v[layer] = beta2 * v[layer] + (1 - beta2) * grad**2
                        m_hat = m[layer] / (1 - beta1**step)
                        v_hat = v[layer] / (1 - beta2**step)
                        param[layer] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

            epoch_loss /= n
            self.loss_curve_.append(epoch_loss)
            if epoch_loss > best_loss - self.tol:
                stall += 1
                if stall >= self.n_iter_no_change:
                    break
            else:
                stall = 0
            best_loss = min(best_loss, epoch_loss)
        return self

    # -- inference ------------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X, self.n_features)
        if not self.weights_:
            raise RuntimeError("model is not fitted")
        h = X
        for layer, (w, b) in enumerate(zip(self.weights_, self.biases_)):
            z = h @ w + b
            h = _sigmoid(z) if layer == len(self.weights_) - 1 else np.maximum(z, 0)
        p = h.ravel()
        return np.column_stack([1 - p, p])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


def _log_loss(y: np.ndarray, p: np.ndarray) -> float:
    p = np.clip(p, 1e-12, 1 - 1e-12)
    return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())
