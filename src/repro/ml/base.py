"""Shared classifier plumbing."""

from __future__ import annotations

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


def check_Xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and normalise a training pair.

    ``X`` becomes a 2-D ``float64`` array (models are feature-type agnostic
    even though the study only uses 0/1 features); ``y`` a 1-D int array of
    0/1 labels.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    labels = np.unique(y)
    if not np.isin(labels, (0, 1)).all():
        raise ValueError(f"labels must be 0/1, got {labels}")
    return X, y.astype(np.int64)


def check_X(X: np.ndarray, n_features: int | None) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if n_features is None:
        raise NotFittedError("model is not fitted yet")
    if X.shape[1] != n_features:
        raise ValueError(f"expected {n_features} features, got {X.shape[1]}")
    return X


class BaseClassifier:
    """Minimal fit/predict interface shared by all six models."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        y = np.asarray(y)
        return float((self.predict(X) == y).mean())
