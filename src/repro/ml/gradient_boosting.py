"""Gradient-boosted decision trees for binary classification.

Standard binomial-deviance GBM: at each stage fit a small regression tree
to the negative gradient (residuals) of the log-loss, then set each leaf's
value with a one-step Newton update.  Defaults mirror scikit-learn's
GradientBoostingClassifier: 100 stages, learning rate 0.1, depth-3 trees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_Xy


@dataclass
class _RegressionNode:
    feature: int | None = None
    threshold: float = 0.5
    left: "_RegressionNode | None" = None
    right: "_RegressionNode | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class _RegressionTree:
    """Squared-error CART regression tree with Newton leaf values."""

    def __init__(self, max_depth: int, min_samples_leaf: int) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.root: _RegressionNode | None = None

    def fit(
        self, X: np.ndarray, residual: np.ndarray, hessian: np.ndarray
    ) -> "_RegressionTree":
        self.root = self._build(X, residual, hessian, depth=0)
        return self

    def _leaf_value(self, residual: np.ndarray, hessian: np.ndarray) -> float:
        # Newton step for log-loss: Σr / Σh (h = p(1-p)).
        denom = float(hessian.sum())
        if denom < 1e-12:
            return 0.0
        return float(residual.sum()) / denom

    def _build(
        self, X: np.ndarray, residual: np.ndarray, hessian: np.ndarray, depth: int
    ) -> _RegressionNode:
        node = _RegressionNode(value=self._leaf_value(residual, hessian))
        n = X.shape[0]
        if depth >= self.max_depth or n < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(X, residual)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], residual[mask], hessian[mask], depth + 1)
        node.right = self._build(X[~mask], residual[~mask], hessian[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, residual: np.ndarray
    ) -> tuple[int, float] | None:
        n, n_features = X.shape
        total_sum = residual.sum()
        best: tuple[float, int, float] | None = None
        for feature in range(n_features):
            column = X[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = n - n_left
                if n_left == 0 or n_right == 0:
                    continue
                sum_left = residual[mask].sum()
                sum_right = total_sum - sum_left
                # Variance-reduction score (maximise): Σl²/nl + Σr²/nr.
                score = sum_left**2 / n_left + sum_right**2 / n_right
                key = (-score, feature, float(threshold))
                if best is None or key < best:
                    best = key
        if best is None:
            return None
        return best[1], best[2]

    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self.root is not None
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostingClassifier(BaseClassifier):
    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state  # accepted for API symmetry
        self.stages_: list[_RegressionTree] = []
        self.base_score_: float = 0.0
        self.n_features: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X, y = check_Xy(X, y)
        self.n_features = X.shape[1]
        self.stages_ = []
        # Initial raw score: log-odds of the positive class.
        positive_rate = np.clip(y.mean(), 1e-9, 1 - 1e-9)
        self.base_score_ = float(np.log(positive_rate / (1 - positive_rate)))
        raw = np.full(X.shape[0], self.base_score_)
        for _ in range(self.n_estimators):
            probability = _sigmoid(raw)
            residual = y - probability
            hessian = probability * (1 - probability)
            tree = _RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(X, residual, hessian)
            update = tree.predict(X)
            raw += self.learning_rate * update
            self.stages_.append(tree)
            if np.abs(residual).max() < 1e-6:
                break
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X, self.n_features)
        raw = np.full(X.shape[0], self.base_score_)
        for tree in self.stages_:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1 - p, p])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
