"""Machine-learning models, from scratch on numpy.

The paper trains six scikit-learn classifiers with out-of-the-box settings.
scikit-learn is not available offline, so this package implements the same
six model families natively, mirroring the relevant defaults:

======  =============================================  =====================
Abbrev  Model                                          Module
======  =============================================  =====================
DT      decision tree (CART, gini)                     ``decision_tree``
RFT     random forest                                  ``random_forest``
ABT     AdaBoost over stumps (SAMME)                   ``adaboost``
GBDT    gradient-boosted trees (log-loss)              ``gradient_boosting``
SVM     linear SVM (dual coordinate descent)           ``svm``
MLP     multi-layer perceptron (ReLU + Adam)           ``mlp``
======  =============================================  =====================

Only the decision tree feeds MCML's model-counting metrics (it exposes its
paths via :meth:`DecisionTreeClassifier.decision_paths`); the other five are
evaluated with the traditional test-set metrics of
:mod:`repro.ml.metrics`, exactly as in the paper.
"""

from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.decision_tree import DecisionTreeClassifier, TreePath
from repro.ml.export import export_dot, export_rules, export_text
from repro.ml.gradient_boosting import GradientBoostingClassifier
from repro.ml.metrics import ConfusionCounts, classification_metrics, confusion_counts
from repro.ml.mlp import MLPClassifier
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.svm import LinearSVC

#: Paper abbreviation → model factory with out-of-the-box settings.
MODEL_REGISTRY = {
    "DT": DecisionTreeClassifier,
    "RFT": RandomForestClassifier,
    "GBDT": GradientBoostingClassifier,
    "ABT": AdaBoostClassifier,
    "SVM": LinearSVC,
    "MLP": MLPClassifier,
}

__all__ = [
    "AdaBoostClassifier",
    "ConfusionCounts",
    "DecisionTreeClassifier",
    "GradientBoostingClassifier",
    "LinearSVC",
    "MLPClassifier",
    "MODEL_REGISTRY",
    "RandomForestClassifier",
    "TreePath",
    "classification_metrics",
    "confusion_counts",
    "export_dot",
    "export_rules",
    "export_text",
]
