"""AdaBoost classifier (SAMME over decision stumps).

Mirrors scikit-learn's default AdaBoostClassifier: 50 depth-1 CART stumps,
learning rate 1.0, the discrete SAMME update.  For binary classification
SAMME reduces to classic AdaBoost.M1.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_Xy
from repro.ml.decision_tree import DecisionTreeClassifier


class AdaBoostClassifier(BaseClassifier):
    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 1.0,
        base_max_depth: int = 1,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.base_max_depth = base_max_depth
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []
        self.n_features: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        X, y = check_Xy(X, y)
        self.n_features = X.shape[1]
        self.estimators_ = []
        self.estimator_weights_ = []
        n = X.shape[0]
        weight = np.full(n, 1.0 / n)

        for _ in range(self.n_estimators):
            stump = DecisionTreeClassifier(max_depth=self.base_max_depth)
            stump.fit(X, y, sample_weight=weight)
            prediction = stump.predict(X)
            wrong = prediction != y
            error = float(weight[wrong].sum())
            if error <= 0.0:
                # Perfect weak learner: take it with a large (finite) weight
                # and stop — further rounds cannot improve.
                self.estimators_.append(stump)
                self.estimator_weights_.append(10.0)
                break
            if error >= 0.5:
                # No better than chance; SAMME stops unless it is the first
                # round (keep one stump so the ensemble is usable).
                if not self.estimators_:
                    self.estimators_.append(stump)
                    self.estimator_weights_.append(1.0)
                break
            alpha = self.learning_rate * 0.5 * np.log((1.0 - error) / error)
            self.estimators_.append(stump)
            self.estimator_weights_.append(float(alpha))
            # Re-weight: up-weight mistakes, normalise.
            signed = np.where(wrong, 1.0, -1.0)
            weight = weight * np.exp(2.0 * alpha * (signed > 0))
            weight /= weight.sum()
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X, self.n_features)
        if not self.estimators_:
            raise RuntimeError("ensemble is not fitted")
        score = np.zeros(X.shape[0])
        for stump, alpha in zip(self.estimators_, self.estimator_weights_):
            score += alpha * (2.0 * stump.predict(X) - 1.0)
        return score

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)
