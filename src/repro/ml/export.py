"""Decision-tree inspection and export.

The paper's motivation section argues that a learned decision tree is itself
a useful artifact — a sketch seed, a readable approximation of a property.
These helpers make the trees inspectable: a text rendering (à la
scikit-learn's ``export_text``), Graphviz DOT output, and a converter from
paths to human-readable rule strings, with adjacency-matrix-aware feature
names (``r[i][j]``).
"""

from __future__ import annotations

import math

from repro.ml.decision_tree import DecisionTreeClassifier, TreeNode


def matrix_feature_names(num_features: int) -> list[str]:
    """Feature names ``r[i][j]`` when the features form an n×n matrix,
    generic ``x{k}`` otherwise."""
    n = math.isqrt(num_features)
    if n * n == num_features:
        return [f"r[{i}][{j}]" for i in range(n) for j in range(n)]
    return [f"x{k}" for k in range(num_features)]


def export_text(tree: DecisionTreeClassifier, feature_names: list[str] | None = None) -> str:
    """Indented if/else rendering of a fitted tree."""
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    if feature_names is None:
        feature_names = matrix_feature_names(tree.n_features or 0)

    lines: list[str] = []

    def walk(node: TreeNode, depth: int) -> None:
        pad = "|   " * depth
        if node.is_leaf:
            lines.append(f"{pad}class: {node.label}")
            return
        name = feature_names[node.feature]
        lines.append(f"{pad}{name} <= {node.threshold:g}")
        walk(node.left, depth + 1)
        lines.append(f"{pad}{name} > {node.threshold:g}")
        walk(node.right, depth + 1)

    walk(tree.root, 0)
    return "\n".join(lines)


def export_dot(tree: DecisionTreeClassifier, feature_names: list[str] | None = None) -> str:
    """Graphviz DOT for a fitted tree."""
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    if feature_names is None:
        feature_names = matrix_feature_names(tree.n_features or 0)

    lines = ["digraph DecisionTree {", "  node [shape=box];"]
    counter = 0

    def walk(node: TreeNode) -> int:
        nonlocal counter
        node_id = counter
        counter += 1
        if node.is_leaf:
            lines.append(f'  n{node_id} [label="class {node.label}"];')
            return node_id
        name = feature_names[node.feature]
        lines.append(f'  n{node_id} [label="{name} <= {node.threshold:g}"];')
        left_id = walk(node.left)
        right_id = walk(node.right)
        lines.append(f'  n{node_id} -> n{left_id} [label="yes"];')
        lines.append(f'  n{node_id} -> n{right_id} [label="no"];')
        return node_id

    walk(tree.root)
    lines.append("}")
    return "\n".join(lines)


def export_rules(tree: DecisionTreeClassifier, label: int = 1) -> list[str]:
    """The paths predicting ``label`` as readable conjunctions.

    For binary-feature trees only — the same condition the MCML translation
    needs — e.g. ``r[0][0] & !r[1][0] -> 1``.
    """
    names = matrix_feature_names(tree.n_features or 0)
    rules = []
    for path in tree.decision_paths():
        if path.label != label:
            continue
        if not path.conditions:
            rules.append(f"TRUE -> {label}")
            continue
        terms = [
            names[f] if value else f"!{names[f]}" for f, value in path.conditions
        ]
        rules.append(" & ".join(terms) + f" -> {label}")
    return rules
