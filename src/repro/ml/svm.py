"""Linear support-vector classifier.

L2-regularised hinge-loss SVM trained by dual coordinate descent — the
liblinear algorithm behind scikit-learn's ``LinearSVC`` (the paper's "SVM"
subject; an RBF kernel would be hopeless on 10⁴ samples in pure Python and
the study's data is near-linearly-separable anyway, as Table 2 shows).

A constant bias feature is appended so the bias is regularised exactly as in
liblinear's default formulation.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_Xy


class LinearSVC(BaseClassifier):
    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 1000,
        tol: float = 1e-4,
        random_state: int | None = 0,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_features: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVC":
        X, y01 = check_Xy(X, y)
        self.n_features = X.shape[1]
        n = X.shape[0]
        y_signed = np.where(y01 == 1, 1.0, -1.0)
        Xb = np.hstack([X, np.ones((n, 1))])  # bias feature

        rng = np.random.default_rng(self.random_state)
        alpha = np.zeros(n)
        w = np.zeros(Xb.shape[1])
        # Per-sample squared norms (the Q_ii diagonal).
        q = np.einsum("ij,ij->i", Xb, Xb)
        order = np.arange(n)

        for _ in range(self.max_iter):
            rng.shuffle(order)
            max_violation = 0.0
            for i in order:
                gradient = y_signed[i] * (Xb[i] @ w) - 1.0
                projected = gradient
                if alpha[i] <= 0:
                    projected = min(gradient, 0.0)
                elif alpha[i] >= self.C:
                    projected = max(gradient, 0.0)
                if abs(projected) > max_violation:
                    max_violation = abs(projected)
                if abs(projected) > 1e-12 and q[i] > 0:
                    old = alpha[i]
                    alpha[i] = float(np.clip(old - gradient / q[i], 0.0, self.C))
                    delta = (alpha[i] - old) * y_signed[i]
                    if delta != 0.0:
                        w += delta * Xb[i]
            if max_violation < self.tol:
                break

        self.coef_ = w[:-1].copy()
        self.intercept_ = float(w[-1])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X, self.n_features)
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)
