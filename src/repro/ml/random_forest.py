"""Random forest classifier (bagged CART trees with feature subsampling)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_Xy
from repro.ml.decision_tree import DecisionTreeClassifier


class RandomForestClassifier(BaseClassifier):
    """Majority vote over bootstrap-trained trees.

    Defaults mirror scikit-learn: 100 trees, ``sqrt`` feature subsampling at
    every split, unlimited depth.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []
        self.n_features: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        self.n_features = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            if self.bootstrap:
                indices = rng.integers(0, n, size=n)
                # Degenerate bootstrap (single class) would break training;
                # resample until both classes are present when possible.
                if len(np.unique(y)) == 2:
                    while len(np.unique(y[indices])) < 2:
                        indices = rng.integers(0, n, size=n)
                Xb, yb = X[indices], y[indices]
            else:
                Xb, yb = X, y
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(Xb, yb)
            self.estimators_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X, self.n_features)
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")
        votes = np.zeros(X.shape[0], dtype=np.int64)
        for tree in self.estimators_:
            votes += tree.predict(X)
        return (votes * 2 >= len(self.estimators_)).astype(np.int64)
