"""Concrete evaluation — the "Alloy Evaluator".

The paper screens randomly sampled candidate negatives by *evaluating* the
Alloy formula on the candidate (constant propagation, no solving).  This
module is the same operation: evaluate a relational formula on one concrete
adjacency matrix using the concrete boolean algebra.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.spec.ast import ConcreteAlgebra, Env, RelFormula

_CONCRETE = ConcreteAlgebra()


def matrix_env(matrix: Sequence[Sequence[bool]] | np.ndarray, relation: str = "r") -> Env:
    """Build a concrete environment from an ``n×n`` adjacency matrix."""
    rows = [list(map(bool, row)) for row in matrix]
    n = len(rows)
    if any(len(row) != n for row in rows):
        raise ValueError("adjacency matrix must be square")
    return Env(n=n, algebra=_CONCRETE, relations={relation: rows})


def evaluate_concrete(
    formula: RelFormula, matrix: Sequence[Sequence[bool]] | np.ndarray
) -> bool:
    """Does the relation given by ``matrix`` satisfy ``formula``?"""
    return bool(formula.eval(matrix_env(matrix)))


def evaluate_bits(formula: RelFormula, bits: Sequence[int], n: int) -> bool:
    """Evaluate on a flattened row-major bit vector of length ``n²``."""
    if len(bits) != n * n:
        raise ValueError(f"expected {n * n} bits, got {len(bits)}")
    matrix = [[bool(bits[i * n + j]) for j in range(n)] for i in range(n)]
    return evaluate_concrete(formula, matrix)
