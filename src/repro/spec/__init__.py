"""Alloy-like relational specification language.

The paper writes its 16 relational properties in Alloy and uses the Alloy
analyzer in three roles.  This package substitutes all three natively:

* **Language** (:mod:`repro.spec.ast`, :mod:`repro.spec.parser`): a
  first-order relational logic with join, product, transpose, transitive
  closure and multiplicity formulas over one signature ``S`` and one binary
  relation ``r`` — the fragment Figure 1 of the paper exercises — plus a
  parser for the Alloy surface syntax.
* **Compiler** (:mod:`repro.spec.translate`): grounding to propositional
  logic at a bounded scope, producing CNF over ``n²`` primary variables —
  the Alloy→Kodkod→CNF pipeline.
* **Evaluator** (:mod:`repro.spec.evaluate`, :mod:`repro.spec.matrices`):
  direct evaluation of a property on a concrete adjacency matrix (the
  "Alloy Evaluator" used to screen negative samples), with vectorised numpy
  twins for bulk work.

:mod:`repro.spec.symmetry` reproduces Alloy's *partial* symmetry breaking
with lex-leader constraints; :mod:`repro.spec.properties` defines the 16
study subjects.
"""

from repro.spec.ast import (
    All,
    AndF,
    Closure,
    Diff,
    Equal,
    Exists,
    IffF,
    ImpliesF,
    In,
    Intersect,
    Join,
    Lone,
    No,
    NotF,
    One,
    OrF,
    Product,
    ReflClosure,
    RelExpr,
    RelFormula,
    RelRef,
    SigRef,
    Some,
    Transpose,
    Union,
    VarRef,
)
from repro.spec.evaluate import evaluate_concrete
from repro.spec.properties import PROPERTIES, Property, get_property, property_names
from repro.spec.symmetry import SymmetryBreaking, lex_leq
from repro.spec.translate import RelationalProblem, translate, var_id

__all__ = [
    "All",
    "AndF",
    "Closure",
    "Diff",
    "Equal",
    "Exists",
    "IffF",
    "ImpliesF",
    "In",
    "Intersect",
    "Join",
    "Lone",
    "No",
    "NotF",
    "One",
    "OrF",
    "PROPERTIES",
    "Product",
    "Property",
    "ReflClosure",
    "RelExpr",
    "RelFormula",
    "RelRef",
    "RelationalProblem",
    "SigRef",
    "Some",
    "SymmetryBreaking",
    "Transpose",
    "Union",
    "VarRef",
    "evaluate_concrete",
    "get_property",
    "lex_leq",
    "property_names",
    "translate",
    "var_id",
]
