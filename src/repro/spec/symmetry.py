"""Partial symmetry breaking à la Alloy.

Alloy's analyzer adds *symmetry-breaking predicates* during translation:
lex-leader constraints that keep a solution only if its relation bit-vector
is lexicographically minimal among its images under a (small) set of
generator permutations of the atoms.  The generator set is deliberately
partial — breaking all symmetries would need every permutation — which is
why Alloy's solution counts sit between "all isomorphic copies" and "one
canonical representative per orbit".

We reproduce this with the classic construction:

* generator set: adjacent transpositions ``(i, i+1)`` by default (the
  ``adjacent`` kind), or every non-identity permutation (the ``all`` kind,
  full lex-leader canonicalisation, feasible at tiny scopes);
* per generator π, the constraint ``vec(r) ≤_lex vec(r ∘ π)`` where
  ``vec`` is the row-major flattening and ``(r ∘ π)[i][j] = r[π(i)][π(j)]``.

Validation anchor (DESIGN.md §2): under the ``adjacent`` kind the number of
equivalence relations at scope ``n`` is the Fibonacci number F(n+1) — 5 at
scope 4 (the paper's Figure 2) and 10,946 at scope 20 (Table 1).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.logic.formula import And, Formula, Iff, Not, Or, TRUE, Var

Permutation = tuple[int, ...]  # image of each atom index


def adjacent_transpositions(n: int) -> list[Permutation]:
    """The n-1 generators Alloy-style partial breaking uses here."""
    generators = []
    for i in range(n - 1):
        perm = list(range(n))
        perm[i], perm[i + 1] = perm[i + 1], perm[i]
        generators.append(tuple(perm))
    return generators


def all_permutations(n: int) -> list[Permutation]:
    """Every non-identity permutation (full lex-leader; n! − 1 generators)."""
    identity = tuple(range(n))
    return [p for p in itertools.permutations(range(n)) if p != identity]


def permuted_positions(perm: Permutation) -> list[int]:
    """Row-major position map: position of (π(i), π(j)) for each (i, j)."""
    n = len(perm)
    return [perm[i] * n + perm[j] for i in range(n) for j in range(n)]


def lex_leq(a: Sequence[Formula], b: Sequence[Formula]) -> Formula:
    """Propositional ``a ≤_lex b`` (index 0 most significant, False < True).

    Built back-to-front with the standard recurrence
    ``leq_k = (¬a_k ∧ b_k) ∨ ((a_k ↔ b_k) ∧ leq_{k+1})``; positions where
    ``a_k`` and ``b_k`` are the same variable fold away for free.
    """
    if len(a) != len(b):
        raise ValueError("lex_leq requires equal-length vectors")
    result: Formula = TRUE
    for x, y in zip(reversed(a), reversed(b)):
        result = Or(And(Not(x), y), And(Iff(x, y), result))
    return result


@dataclass(frozen=True)
class SymmetryBreaking:
    """A symmetry-breaking policy.

    ``kind`` is ``"adjacent"`` (Alloy-style partial breaking, default) or
    ``"all"`` (full lex-leader; only sensible for tiny scopes).
    """

    kind: str = "adjacent"

    def __post_init__(self) -> None:
        if self.kind not in ("adjacent", "all"):
            raise ValueError(f"unknown symmetry-breaking kind {self.kind!r}")

    def generators(self, n: int) -> list[Permutation]:
        if self.kind == "adjacent":
            return adjacent_transpositions(n)
        return all_permutations(n)

    def formula(self, n: int, var_of: Sequence[Formula] | None = None) -> Formula:
        """The conjunction of lex-leader constraints as a propositional formula.

        ``var_of`` supplies the formula for each row-major matrix position;
        defaults to ``Var(position + 1)`` matching the translator's variable
        numbering.
        """
        if var_of is None:
            var_of = [Var(k + 1) for k in range(n * n)]
        if len(var_of) != n * n:
            raise ValueError(f"need {n * n} position formulas, got {len(var_of)}")
        constraints = []
        for perm in self.generators(n):
            positions = permuted_positions(perm)
            permuted = [var_of[p] for p in positions]
            constraints.append(lex_leq(list(var_of), permuted))
        return And(*constraints)

    def mask(self, bits: np.ndarray, n: int) -> np.ndarray:
        """Vectorised filter: which rows of a (batch, n²) bit block are
        lex-minimal under every generator?

        Matches :meth:`formula` exactly (differentially tested); used by the
        fast bounded-exhaustive generator.
        """
        if bits.shape[1] != n * n:
            raise ValueError(f"expected {n * n} columns, got {bits.shape[1]}")
        m = n * n
        a = bits.astype(bool)
        keep = np.ones(bits.shape[0], dtype=bool)
        for perm in self.generators(n):
            positions = permuted_positions(perm)
            b = a[:, positions]
            # Column-wise lexicographic a ≤ b (no integer packing, so any n).
            less = np.zeros(a.shape[0], dtype=bool)
            equal_prefix = np.ones(a.shape[0], dtype=bool)
            for k in range(m):
                if positions[k] == k:
                    continue  # fixed position: a_k == b_k by construction
                ak, bk = a[:, k], b[:, k]
                less |= equal_prefix & ~ak & bk
                equal_prefix &= ak == bk
            keep &= less | equal_prefix
        return keep

    def is_minimal(self, matrix: Sequence[Sequence[bool]]) -> bool:
        """Scalar version of :meth:`mask` for a single adjacency matrix."""
        n = len(matrix)
        flat = np.array([[cell for row in matrix for cell in row]], dtype=bool)
        return bool(self.mask(flat, n)[0])

    def canonical_orbit_count(self, masks: np.ndarray, n: int) -> int:
        """Count survivors of symmetry breaking among given bit rows."""
        return int(self.mask(masks, n).sum())


def iter_orbit(matrix: np.ndarray) -> Iterator[np.ndarray]:
    """All relabelings of an adjacency matrix (one per permutation)."""
    n = matrix.shape[0]
    for perm in itertools.permutations(range(n)):
        index = np.array(perm)
        yield matrix[np.ix_(index, index)]
