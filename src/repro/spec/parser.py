"""Parser for the Alloy surface syntax fragment used by the paper.

Figure 1 of the paper is an ordinary Alloy specification::

    sig S { r: set S }
    pred Reflexive() { all s: S | s->s in r }
    pred Symmetric() { all s, t: S | s->t in r implies t->s in r }
    pred Equivalence() { Reflexive and Symmetric and Transitive }
    E4: run Equivalence for exactly 4 S

This module parses that fragment into the relational AST of
:mod:`repro.spec.ast`:

* ``sig`` declarations with ``set``-typed binary relation fields;
* ``pred`` declarations (no parameters) whose bodies are conjunctions of
  formulas, including calls to other predicates;
* ``run`` commands with ``for [exactly] N S`` scopes;
* expressions: ``.`` (join), ``->`` (product), ``~`` ``^`` ``*`` (unary),
  ``+ & -`` (set ops), names;
* formulas: ``in``, ``=``, ``!=``, multiplicities ``some/no/lone/one expr``,
  quantifiers ``all/some v, w: S | body``, connectives
  ``not/! and/&& or/|| implies/=> iff/<=>``, parentheses, predicate calls.

The grammar is parsed by recursive descent with precedence climbing; there
is nothing exotic here, by design — it needs to be obviously correct.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.spec import ast as A

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
    | (?P<arrow>->)
    | (?P<implies_op>=>)
    | (?P<iff_op><=>)
    | (?P<neq>!=)
    | (?P<and_op>&&)
    | (?P<or_op>\|\|)
    | (?P<number>\d+)
    | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
    | (?P<punct>[{}()\[\]:|,.~^*+\-&=!])
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORDS = {
    "sig", "pred", "fact", "run", "for", "exactly", "set", "one", "lone",
    "some", "no", "all", "in", "and", "or", "implies", "iff", "not", "iden",
    "univ",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'name', 'number', 'keyword', or the literal symbol
    text: str
    position: int


class AlloySyntaxError(ValueError):
    """Raised on any lexical or syntactic problem, with source position."""

    def __init__(self, message: str, position: int, source: str) -> None:
        line = source.count("\n", 0, position) + 1
        column = position - (source.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise AlloySyntaxError(
                f"unexpected character {source[position]!r}", position, source
            )
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            if kind == "name" and text in _KEYWORDS:
                tokens.append(Token("keyword", text, position))
            elif kind in ("name", "number"):
                tokens.append(Token(kind, text, position))
            elif kind == "arrow":
                tokens.append(Token("arrow", text, position))
            else:
                # Compound operators and single-character punctuation use
                # their literal text as the token kind.
                tokens.append(Token(text, text, position))
        position = match.end()
    tokens.append(Token("eof", "", len(source)))
    return tokens


# ---------------------------------------------------------------------------
# Parse results
# ---------------------------------------------------------------------------


@dataclass
class RunCommand:
    """``label: run PredName for [exactly] N S``."""

    label: str | None
    predicate: str
    scope: int
    exact: bool


@dataclass
class Specification:
    """A parsed Alloy module (the study fragment)."""

    sig_name: str | None = None
    relations: dict[str, str] = field(default_factory=dict)  # name -> sig
    predicates: dict[str, A.RelFormula] = field(default_factory=dict)
    facts: list[A.RelFormula] = field(default_factory=list)
    runs: list[RunCommand] = field(default_factory=list)

    def formula(self, predicate: str) -> A.RelFormula:
        """The named predicate conjoined with all facts."""
        if predicate not in self.predicates:
            raise KeyError(
                f"unknown predicate {predicate!r}; "
                f"known: {', '.join(sorted(self.predicates))}"
            )
        result = self.predicates[predicate]
        for fact in self.facts:
            result = A.AndF(result, fact)
        return result


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0
        self.spec = Specification()
        # Names of quantified variables in scope, innermost last.
        self._scope_vars: list[str] = []

    # -- token plumbing ----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            got = self.peek()
            want = text or kind
            raise AlloySyntaxError(
                f"expected {want!r}, found {got.text or 'end of input'!r}",
                got.position,
                self.source,
            )
        return token

    # -- top level -----------------------------------------------------------------

    def parse(self) -> Specification:
        while not self.check("eof"):
            if self.check("keyword", "sig"):
                self._sig()
            elif self.check("keyword", "pred"):
                self._pred()
            elif self.check("keyword", "fact"):
                self._fact()
            elif self.check("keyword", "run"):
                self._run(label=None)
            elif self.check("name") and self.peek(1).kind == ":" and (
                self.peek(2).kind == "keyword" and self.peek(2).text == "run"
            ):
                label = self.advance().text
                self.expect(":")
                self._run(label=label)
            else:
                token = self.peek()
                raise AlloySyntaxError(
                    f"expected a declaration, found {token.text!r}",
                    token.position,
                    self.source,
                )
        return self.spec

    def _sig(self) -> None:
        self.expect("keyword", "sig")
        name = self.expect("name").text
        if self.spec.sig_name is not None and self.spec.sig_name != name:
            raise AlloySyntaxError(
                "this fragment supports a single signature",
                self.peek().position,
                self.source,
            )
        self.spec.sig_name = name
        self.expect("{")
        while not self.check("}"):
            field_name = self.expect("name").text
            self.expect(":")
            self.expect("keyword", "set")
            target = self.expect("name").text
            if target != name:
                raise AlloySyntaxError(
                    f"field {field_name!r} must target the declaring sig",
                    self.peek().position,
                    self.source,
                )
            self.spec.relations[field_name] = name
            if not self.accept(","):
                break
        self.expect("}")

    def _pred(self) -> None:
        self.expect("keyword", "pred")
        name = self.expect("name").text
        if self.accept("("):
            self.expect(")")
        if self.accept("["):
            self.expect("]")
        self.expect("{")
        body: A.RelFormula | None = None
        while not self.check("}"):
            clause = self._formula()
            body = clause if body is None else A.AndF(body, clause)
        self.expect("}")
        if body is None:
            raise AlloySyntaxError(
                f"predicate {name!r} has an empty body",
                self.peek().position,
                self.source,
            )
        self.spec.predicates[name] = body

    def _fact(self) -> None:
        self.expect("keyword", "fact")
        self.accept("name")  # optional fact label
        self.expect("{")
        while not self.check("}"):
            self.spec.facts.append(self._formula())
        self.expect("}")

    def _run(self, label: str | None) -> None:
        self.expect("keyword", "run")
        predicate = self.expect("name").text
        self.expect("keyword", "for")
        exact = self.accept("keyword", "exactly") is not None
        scope = int(self.expect("number").text)
        sig = self.expect("name").text
        if self.spec.sig_name is not None and sig != self.spec.sig_name:
            raise AlloySyntaxError(
                f"run scope names unknown sig {sig!r}",
                self.peek().position,
                self.source,
            )
        self.spec.runs.append(RunCommand(label, predicate, scope, exact))

    # -- formulas --------------------------------------------------------------------
    #
    # Precedence (low → high):  iff < implies < or < and < not < comparison.

    def _formula(self) -> A.RelFormula:
        return self._iff()

    def _iff(self) -> A.RelFormula:
        left = self._implies()
        while self.accept("keyword", "iff") or self.accept("<=>"):
            right = self._implies()
            left = A.IffF(left, right)
        return left

    def _implies(self) -> A.RelFormula:
        left = self._or()
        # Right-associative.
        if self.accept("keyword", "implies") or self.accept("=>"):
            right = self._implies()
            return A.ImpliesF(left, right)
        return left

    def _or(self) -> A.RelFormula:
        left = self._and()
        while self.accept("keyword", "or") or self.accept("||"):
            left = A.OrF(left, self._and())
        return left

    def _and(self) -> A.RelFormula:
        left = self._not()
        while self.accept("keyword", "and") or self.accept("&&"):
            left = A.AndF(left, self._not())
        return left

    def _not(self) -> A.RelFormula:
        if self.accept("keyword", "not") or self.accept("!"):
            return A.NotF(self._not())
        return self._atom_formula()

    def _atom_formula(self) -> A.RelFormula:
        # Quantifiers.
        for keyword, node in (("all", A.All), ("some", A.Exists)):
            if self.check("keyword", keyword) and self._looks_like_quantifier():
                self.advance()
                names = [self.expect("name").text]
                while self.accept(","):
                    names.append(self.expect("name").text)
                self.expect(":")
                sig = self.expect("name").text
                if self.spec.sig_name is not None and sig != self.spec.sig_name:
                    raise AlloySyntaxError(
                        f"quantifier over unknown sig {sig!r}",
                        self.peek().position,
                        self.source,
                    )
                self.expect("|")
                self._scope_vars.extend(names)
                try:
                    body = self._formula()
                finally:
                    del self._scope_vars[-len(names):]
                return node(tuple(names), body)

        # Multiplicity formulas: some/no/lone/one <expr>.
        for keyword, node in (
            ("some", A.Some),
            ("no", A.No),
            ("lone", A.Lone),
            ("one", A.One),
        ):
            if self.accept("keyword", keyword):
                return node(self._expr())

        if self.check("("):
            # "(" is ambiguous: it may open a parenthesised formula or a
            # parenthesised *expression* (as in "(r + iden) - iden in r").
            # Try the formula reading first and backtrack on failure.
            saved = self.index
            self.advance()
            try:
                inner = self._formula()
                self.expect(")")
                return inner
            except AlloySyntaxError:
                self.index = saved  # fall through to the comparison branch

        # Predicate call: a bare name that is (or will be) a predicate, not
        # followed by an expression operator.
        if self.check("name") and self.peek().text in self.spec.predicates and not self._name_is_expression():
            name = self.advance().text
            if self.accept("("):
                self.expect(")")
            if self.accept("["):
                self.expect("]")
            return self.spec.predicates[name]

        # Comparison: expr (in | = | !=) expr.
        left = self._expr()
        if self.accept("keyword", "in"):
            return A.In(left, self._expr())
        if self.accept("keyword", "not"):
            self.expect("keyword", "in")
            return A.NotF(A.In(left, self._expr()))
        if self.accept("="):
            return A.Equal(left, self._expr())
        if self.accept("!="):
            return A.NotF(A.Equal(left, self._expr()))
        token = self.peek()
        raise AlloySyntaxError(
            "expected 'in', '=', or '!=' after expression",
            token.position,
            self.source,
        )

    def _looks_like_quantifier(self) -> bool:
        """Disambiguate ``some s: S | …`` from the multiplicity ``some expr``."""
        offset = 1
        if self.peek(offset).kind != "name":
            return False
        offset += 1
        while self.peek(offset).kind == ",":
            offset += 1
            if self.peek(offset).kind != "name":
                return False
            offset += 1
        return self.peek(offset).kind == ":"

    def _name_is_expression(self) -> bool:
        """A predicate-named token still parses as an expression if an
        operator follows (shadowing is not supported in this fragment)."""
        return self.peek(1).kind in (".", "arrow", "+", "&", "-", "=", "!=") or (
            self.peek(1).kind == "keyword" and self.peek(1).text == "in"
        )

    # -- expressions -------------------------------------------------------------------
    #
    # Precedence (low → high):  + -  <  &  <  .  ->  <  unary ~ ^ *.

    def _expr(self) -> A.RelExpr:
        left = self._intersect()
        while True:
            if self.accept("+"):
                left = A.Union(left, self._intersect())
            elif self.accept("-"):
                left = A.Diff(left, self._intersect())
            else:
                return left

    def _intersect(self) -> A.RelExpr:
        left = self._joinish()
        while self.accept("&"):
            left = A.Intersect(left, self._joinish())
        return left

    def _joinish(self) -> A.RelExpr:
        left = self._unary()
        while True:
            if self.accept("."):
                left = A.Join(left, self._unary())
            elif self.accept("arrow"):
                left = A.Product(left, self._unary())
            else:
                return left

    def _unary(self) -> A.RelExpr:
        if self.accept("~"):
            return A.Transpose(self._unary())
        if self.accept("^"):
            return A.Closure(self._unary())
        if self.accept("*"):
            return A.ReflClosure(self._unary())
        if self.accept("("):
            inner = self._expr()
            self.expect(")")
            return inner
        if self.accept("keyword", "iden"):
            return A.Iden()
        if self.accept("keyword", "univ"):
            return A.SigRef(self.spec.sig_name or "S")
        token = self.expect("name")
        name = token.text
        if name in self._scope_vars:
            return A.VarRef(name)
        if name in self.spec.relations:
            return A.RelRef(name)
        if name == self.spec.sig_name:
            return A.SigRef(name)
        raise AlloySyntaxError(f"unknown name {name!r}", token.position, self.source)


def parse(source: str) -> Specification:
    """Parse an Alloy module (study fragment) into a :class:`Specification`."""
    return _Parser(source).parse()


def parse_predicate(source: str, predicate: str) -> A.RelFormula:
    """Parse a module and return one predicate's formula (facts conjoined)."""
    return parse(source).formula(predicate)
