"""Scope selection — the paper's §5 methodology.

The study picks, per property, "the smallest scope such that there are
≥ 10,000 positive solutions" (symmetry breaking on) or "≥ 90,000" (off).
This module reproduces that selection so the published scope column of
Table 1 can be *derived* rather than hard-coded:

* without symmetry breaking the solution counts come from the closed forms
  (:mod:`repro.counting.oracles`) — instant at any scope;
* with symmetry breaking the count requires counting lex-minimal solutions,
  which we do exactly at small scopes (vectorised sweep) and otherwise via
  SAT enumeration with a cutoff.
"""

from __future__ import annotations

from repro.counting.brute import MAX_BRUTE_VARS, iter_assignment_blocks
from repro.counting.oracles import closed_form_count
from repro.spec.matrices import bits_to_matrices, property_mask
from repro.spec.properties import Property
from repro.spec.symmetry import SymmetryBreaking

#: Thresholds from Section 5 ("Selection of scope and symmetry breaking").
PAPER_MIN_POSITIVES_SYMBR = 10_000
PAPER_MIN_POSITIVES_NOSYMBR = 90_000


def positive_count(
    prop: Property,
    scope: int,
    symmetry: SymmetryBreaking | None = None,
    limit: int | None = None,
) -> int:
    """Number of positive solutions at ``scope`` (≤ ``limit`` if given).

    Without symmetry breaking the closed form answers exactly.  With it,
    small scopes are counted exactly by sweep; larger scopes enumerate with
    the SAT back-end up to ``limit`` (enough for threshold queries).
    """
    if symmetry is None:
        return closed_form_count(prop.oracle, scope)
    m = scope * scope
    if m <= MAX_BRUTE_VARS:
        mask_fn = property_mask(prop.oracle)
        total = 0
        for block in iter_assignment_blocks(m):
            keep = mask_fn(bits_to_matrices(block, scope))
            keep &= symmetry.mask(block, scope)
            total += int(keep.sum())
            if limit is not None and total >= limit:
                return total
        return total
    from repro.sat.enumerate import count_models
    from repro.spec.translate import translate

    problem = translate(prop, scope, symmetry=symmetry)
    return count_models(problem.cnf, limit=limit)


def choose_scope(
    prop: Property,
    min_positives: int,
    symmetry: SymmetryBreaking | None = None,
    max_scope: int = 24,
) -> int:
    """Smallest scope with at least ``min_positives`` positive solutions."""
    if min_positives < 1:
        raise ValueError("min_positives must be >= 1")
    for scope in range(1, max_scope + 1):
        if positive_count(prop, scope, symmetry=symmetry, limit=min_positives) >= min_positives:
            return scope
    raise ValueError(
        f"{prop.name} never reaches {min_positives} positives by scope {max_scope}"
    )


def paper_scope_no_symbr(prop: Property, max_scope: int = 24) -> int:
    """The scope the paper's no-symmetry-breaking setting would choose."""
    return choose_scope(prop, PAPER_MIN_POSITIVES_NOSYMBR, symmetry=None, max_scope=max_scope)
