"""The 16 relational properties of the study.

Definitions follow DESIGN.md §2: where the paper does not print a predicate
body, the definition was pinned down so that the exact no-symmetry-breaking
model counts in Table 1 match closed forms (each is verified in
``tests/test_spec_properties.py``).

Every property is a :class:`Property` carrying:

* the relational formula (over signature ``S`` and binary relation ``r``);
* the paper's scope (Table 1) and a reduced default scope that keeps the
  pure-Python pipeline fast;
* the closed-form oracle name used for analytic validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spec.ast import (
    All,
    AndF,
    Exists,
    ImpliesF,
    In,
    Join,
    Lone,
    NotF,
    One,
    OrF,
    Product,
    RelFormula,
    RelRef,
    Some,
    VarRef,
    pair_in,
    var_eq,
)

_r = RelRef("r")


def _reflexive() -> RelFormula:
    # all s: S | s->s in r
    return All(("s",), pair_in(_r, "s", "s"))


def _irreflexive() -> RelFormula:
    # all s: S | s->s not in r
    return All(("s",), NotF(pair_in(_r, "s", "s")))


def _symmetric() -> RelFormula:
    # all s, t: S | s->t in r implies t->s in r
    return All(("s", "t"), ImpliesF(pair_in(_r, "s", "t"), pair_in(_r, "t", "s")))


def _antisymmetric() -> RelFormula:
    # all s, t: S | (s->t in r and t->s in r) implies s = t
    return All(
        ("s", "t"),
        ImpliesF(
            AndF(pair_in(_r, "s", "t"), pair_in(_r, "t", "s")),
            var_eq("s", "t"),
        ),
    )


def _transitive() -> RelFormula:
    # all s, t, u: S | (s->t in r and t->u in r) implies s->u in r
    return All(
        ("s", "t", "u"),
        ImpliesF(
            AndF(pair_in(_r, "s", "t"), pair_in(_r, "t", "u")),
            pair_in(_r, "s", "u"),
        ),
    )


def _connex() -> RelFormula:
    # all s, t: S | s->t in r or t->s in r       (s = t forces reflexivity)
    return All(("s", "t"), OrF(pair_in(_r, "s", "t"), pair_in(_r, "t", "s")))


def _functional() -> RelFormula:
    # all s: S | lone s.r
    return All(("s",), Lone(Join(VarRef("s"), _r)))


def _function() -> RelFormula:
    # all s: S | one s.r
    return All(("s",), One(Join(VarRef("s"), _r)))


def _injective() -> RelFormula:
    # all t: S | one r.t — exactly one pre-image per atom (DESIGN.md §2:
    # the only reading compatible with Table 1's count of n^n at scope 8).
    return All(("t",), One(Join(_r, VarRef("t"))))


def _surjective() -> RelFormula:
    # Function and all t: S | some r.t
    return AndF(_function(), All(("t",), Some(Join(_r, VarRef("t")))))


def _bijective() -> RelFormula:
    return AndF(_function(), _injective())


def _equivalence() -> RelFormula:
    return AndF(AndF(_reflexive(), _symmetric()), _transitive())


def _partial_order() -> RelFormula:
    # Antisymmetric and transitive; the diagonal is unconstrained, giving
    # the posets·2^n count of Table 1.
    return AndF(_antisymmetric(), _transitive())


def _non_strict_order() -> RelFormula:
    return AndF(AndF(_reflexive(), _antisymmetric()), _transitive())


def _strict_order() -> RelFormula:
    # Irreflexive and transitive (antisymmetry is implied).
    return AndF(_irreflexive(), _transitive())


def _pre_order() -> RelFormula:
    return AndF(_reflexive(), _transitive())


def _total_order() -> RelFormula:
    return AndF(_non_strict_order(), _connex())


@dataclass(frozen=True)
class Property:
    """One study subject."""

    name: str
    formula: RelFormula
    paper_scope: int  # Table 1's scope column
    repro_scope: int  # reduced default scope for the pure-Python pipeline
    oracle: str  # key into counting.oracles.closed_form_count

    def __str__(self) -> str:
        return self.name


PROPERTIES: tuple[Property, ...] = (
    Property("Antisymmetric", _antisymmetric(), 5, 4, "antisymmetric"),
    Property("Bijective", _bijective(), 14, 4, "bijective"),
    Property("Connex", _connex(), 6, 4, "connex"),
    Property("Equivalence", _equivalence(), 20, 4, "equivalence"),
    Property("Function", _function(), 8, 4, "function"),
    Property("Functional", _functional(), 8, 4, "functional"),
    Property("Injective", _injective(), 8, 4, "injective"),
    Property("Irreflexive", _irreflexive(), 5, 4, "irreflexive"),
    Property("NonStrictOrder", _non_strict_order(), 7, 4, "nonstrictorder"),
    Property("PartialOrder", _partial_order(), 6, 4, "partialorder"),
    Property("PreOrder", _pre_order(), 7, 4, "preorder"),
    Property("Reflexive", _reflexive(), 5, 4, "reflexive"),
    Property("StrictOrder", _strict_order(), 7, 4, "strictorder"),
    Property("Surjective", _surjective(), 14, 4, "surjective"),
    Property("TotalOrder", _total_order(), 13, 4, "totalorder"),
    Property("Transitive", _transitive(), 6, 4, "transitive"),
)

_BY_NAME = {p.name.lower(): p for p in PROPERTIES}


def get_property(name: str) -> Property:
    """Look up a property by (case-insensitive) name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown property {name!r}; known: {', '.join(property_names())}"
        ) from None


def property_names() -> list[str]:
    return [p.name for p in PROPERTIES]
