"""Vectorised property evaluation over batches of adjacency matrices.

These are numpy twins of the 16 relational properties: each function takes a
``(batch, n, n)`` boolean array and returns a ``(batch,)`` boolean mask.
They serve three purposes:

* **independent semantics check** — the AST evaluator, the CNF translation
  and these hand-written implementations are tested against each other;
* **fast bounded-exhaustive generation** — at small scopes, sweeping all
  ``2^(n²)`` matrices through these masks beats SAT enumeration by orders of
  magnitude;
* **fast negative sampling** — rejection sampling screens thousands of
  random matrices per call.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

Mask = np.ndarray  # (batch,) bool
Batch = np.ndarray  # (batch, n, n) bool


def _diag(batch: Batch) -> np.ndarray:
    return np.diagonal(batch, axis1=1, axis2=2)


def reflexive(batch: Batch) -> Mask:
    return _diag(batch).all(axis=1)


def irreflexive(batch: Batch) -> Mask:
    return ~_diag(batch).any(axis=1)


def symmetric(batch: Batch) -> Mask:
    return (batch == batch.transpose(0, 2, 1)).all(axis=(1, 2))


def antisymmetric(batch: Batch) -> Mask:
    both = batch & batch.transpose(0, 2, 1)
    n = batch.shape[1]
    off_diagonal = ~np.eye(n, dtype=bool)
    return ~(both & off_diagonal).any(axis=(1, 2))


def connex(batch: Batch) -> Mask:
    either = batch | batch.transpose(0, 2, 1)
    return either.all(axis=(1, 2))


def transitive(batch: Batch) -> Mask:
    # r;r ⊆ r, computed as a boolean matrix product.
    composed = np.matmul(batch.astype(np.uint8), batch.astype(np.uint8)) > 0
    return (~composed | batch).all(axis=(1, 2))


def functional(batch: Batch) -> Mask:
    return (batch.sum(axis=2) <= 1).all(axis=1)


def function(batch: Batch) -> Mask:
    return (batch.sum(axis=2) == 1).all(axis=1)


def injective(batch: Batch) -> Mask:
    # Exactly one pre-image per atom (DESIGN.md §2).
    return (batch.sum(axis=1) == 1).all(axis=1)


def surjective(batch: Batch) -> Mask:
    return function(batch) & (batch.sum(axis=1) >= 1).all(axis=1)


def bijective(batch: Batch) -> Mask:
    return function(batch) & injective(batch)


def equivalence(batch: Batch) -> Mask:
    return reflexive(batch) & symmetric(batch) & transitive(batch)


def partial_order(batch: Batch) -> Mask:
    return antisymmetric(batch) & transitive(batch)


def non_strict_order(batch: Batch) -> Mask:
    return reflexive(batch) & antisymmetric(batch) & transitive(batch)


def strict_order(batch: Batch) -> Mask:
    return irreflexive(batch) & transitive(batch)


def pre_order(batch: Batch) -> Mask:
    return reflexive(batch) & transitive(batch)


def total_order(batch: Batch) -> Mask:
    return non_strict_order(batch) & connex(batch)


PROPERTY_MASKS: dict[str, Callable[[Batch], Mask]] = {
    "antisymmetric": antisymmetric,
    "bijective": bijective,
    "connex": connex,
    "equivalence": equivalence,
    "function": function,
    "functional": functional,
    "injective": injective,
    "irreflexive": irreflexive,
    "nonstrictorder": non_strict_order,
    "partialorder": partial_order,
    "preorder": pre_order,
    "reflexive": reflexive,
    "strictorder": strict_order,
    "surjective": surjective,
    "totalorder": total_order,
    "transitive": transitive,
}


def property_mask(name: str) -> Callable[[Batch], Mask]:
    """The vectorised evaluator for a property, by (case-insensitive) name."""
    try:
        return PROPERTY_MASKS[name.lower()]
    except KeyError:
        raise KeyError(f"no vectorised evaluator for property {name!r}") from None


def bits_to_matrices(bits: np.ndarray, n: int) -> Batch:
    """Reshape a (batch, n²) bit block into (batch, n, n) adjacency matrices."""
    if bits.shape[1] != n * n:
        raise ValueError(f"expected {n * n} columns, got {bits.shape[1]}")
    return bits.reshape(-1, n, n).astype(bool)


def matrices_to_bits(matrices: Batch) -> np.ndarray:
    """Flatten (batch, n, n) matrices to (batch, n²) row-major bit rows."""
    batch = matrices.shape[0]
    return matrices.reshape(batch, -1)
