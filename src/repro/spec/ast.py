"""Relational logic AST and its grounding semantics.

The language models the Alloy fragment the paper uses: one signature ``S``
of ``n`` atoms, one binary relation ``r ⊆ S×S``, relational expressions
(join ``.``, product ``->``, transpose ``~``, transitive closure ``^``,
reflexive-transitive closure ``*``, union/intersection/difference) and
first-order formulas (quantifiers, multiplicities ``some/no/lone/one``,
subset ``in``, equality, boolean connectives).

Semantics are defined *once*, parameterised by a boolean algebra:

* with the **concrete** algebra (Python bools) evaluation on an adjacency
  matrix yields True/False — this is the paper's "Alloy Evaluator" used to
  screen randomly sampled negative examples without constraint solving;
* with the **symbolic** algebra (:class:`repro.logic.formula.Formula`
  nodes) evaluation yields the propositional grounding of the property at
  scope ``n`` — the Alloy→Kodkod translation.  One-hot quantifier grounding
  plus the constant folding built into the formula constructors keeps the
  grounded formulas compact.

Expressions evaluate to vectors (arity 1: length-``n`` list) or matrices
(arity 2: ``n×n`` nested list) of algebra values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Protocol, Sequence, TypeVar

T = TypeVar("T")

Vector = list
Matrix = list  # list of Vector


class BoolAlgebra(Protocol[T]):
    """The operations grounding needs from a boolean domain."""

    def true(self) -> T: ...
    def false(self) -> T: ...
    def conj(self, a: T, b: T) -> T: ...
    def disj(self, a: T, b: T) -> T: ...
    def neg(self, a: T) -> T: ...
    def implies(self, a: T, b: T) -> T: ...
    def iff(self, a: T, b: T) -> T: ...
    def conj_all(self, parts: list) -> T: ...
    def disj_all(self, parts: list) -> T: ...


class ConcreteAlgebra:
    """Plain Python booleans."""

    def true(self) -> bool:
        return True

    def false(self) -> bool:
        return False

    def conj(self, a: bool, b: bool) -> bool:
        return a and b

    def disj(self, a: bool, b: bool) -> bool:
        return a or b

    def neg(self, a: bool) -> bool:
        return not a

    def implies(self, a: bool, b: bool) -> bool:
        return (not a) or b

    def iff(self, a: bool, b: bool) -> bool:
        return a == b

    def conj_all(self, parts: list) -> bool:
        return all(parts)

    def disj_all(self, parts: list) -> bool:
        return any(parts)


class SymbolicAlgebra:
    """Propositional formulas; relies on constructor-level constant folding."""

    def __init__(self) -> None:
        from repro.logic import formula as _f

        self._f = _f

    def true(self):
        return self._f.TRUE

    def false(self):
        return self._f.FALSE

    def conj(self, a, b):
        return self._f.And(a, b)

    def disj(self, a, b):
        return self._f.Or(a, b)

    def neg(self, a):
        return self._f.Not(a)

    def implies(self, a, b):
        return self._f.Implies(a, b)

    def iff(self, a, b):
        return self._f.Iff(a, b)

    def conj_all(self, parts: list):
        return self._f.And(*parts)

    def disj_all(self, parts: list):
        return self._f.Or(*parts)


@dataclass
class Env(Generic[T]):
    """Grounding environment.

    ``relations`` maps relation names to ``n×n`` matrices of algebra values;
    ``bindings`` maps quantified variable names to atom indices.
    """

    n: int
    algebra: BoolAlgebra
    relations: dict[str, Matrix]
    bindings: dict[str, int] = field(default_factory=dict)

    def bound(self, name: str, atom: int) -> "Env[T]":
        child = dict(self.bindings)
        child[name] = atom
        return Env(self.n, self.algebra, self.relations, child)


# ===========================================================================
# Expressions
# ===========================================================================


class RelExpr:
    """Base class of relational expressions.  ``arity`` is 1 or 2."""

    def arity(self, env_arities: dict[str, int]) -> int:
        raise NotImplementedError

    def eval(self, env: Env):
        """Vector (arity 1) or Matrix (arity 2) of algebra values."""
        raise NotImplementedError

    # Operator sugar mirroring Alloy syntax where Python allows.
    def join(self, other: "RelExpr") -> "RelExpr":
        return Join(self, other)

    def product(self, other: "RelExpr") -> "RelExpr":
        return Product(self, other)

    def __add__(self, other: "RelExpr") -> "RelExpr":
        return Union(self, other)

    def __and__(self, other: "RelExpr") -> "RelExpr":
        return Intersect(self, other)

    def __sub__(self, other: "RelExpr") -> "RelExpr":
        return Diff(self, other)

    def __invert__(self) -> "RelExpr":
        return Transpose(self)


@dataclass(frozen=True)
class RelRef(RelExpr):
    """A named binary relation (``r`` in the study)."""

    name: str

    def arity(self, env_arities: dict[str, int]) -> int:
        return env_arities.get(self.name, 2)

    def eval(self, env: Env) -> Matrix:
        return env.relations[self.name]


@dataclass(frozen=True)
class SigRef(RelExpr):
    """The signature ``S``: the set of all atoms."""

    name: str = "S"

    def arity(self, env_arities: dict[str, int]) -> int:
        return 1

    def eval(self, env: Env) -> Vector:
        t = env.algebra.true()
        return [t] * env.n


@dataclass(frozen=True)
class Iden(RelExpr):
    """The identity relation ``iden``."""

    def arity(self, env_arities: dict[str, int]) -> int:
        return 2

    def eval(self, env: Env) -> Matrix:
        alg = env.algebra
        return [
            [alg.true() if i == j else alg.false() for j in range(env.n)]
            for i in range(env.n)
        ]


@dataclass(frozen=True)
class VarRef(RelExpr):
    """A quantified atom variable, evaluated as a one-hot vector."""

    name: str

    def arity(self, env_arities: dict[str, int]) -> int:
        return 1

    def eval(self, env: Env) -> Vector:
        atom = env.bindings[self.name]
        alg = env.algebra
        return [alg.true() if i == atom else alg.false() for i in range(env.n)]


def _check_same_arity(a: int, b: int, op: str) -> int:
    if a != b:
        raise TypeError(f"{op} requires equal arities, got {a} and {b}")
    return a


@dataclass(frozen=True)
class Union(RelExpr):
    left: RelExpr
    right: RelExpr

    def arity(self, env_arities: dict[str, int]) -> int:
        return _check_same_arity(
            self.left.arity(env_arities), self.right.arity(env_arities), "+"
        )

    def eval(self, env: Env):
        return _zip_elementwise(self.left.eval(env), self.right.eval(env), env.algebra.disj)


@dataclass(frozen=True)
class Intersect(RelExpr):
    left: RelExpr
    right: RelExpr

    def arity(self, env_arities: dict[str, int]) -> int:
        return _check_same_arity(
            self.left.arity(env_arities), self.right.arity(env_arities), "&"
        )

    def eval(self, env: Env):
        return _zip_elementwise(self.left.eval(env), self.right.eval(env), env.algebra.conj)


@dataclass(frozen=True)
class Diff(RelExpr):
    left: RelExpr
    right: RelExpr

    def arity(self, env_arities: dict[str, int]) -> int:
        return _check_same_arity(
            self.left.arity(env_arities), self.right.arity(env_arities), "-"
        )

    def eval(self, env: Env):
        alg = env.algebra
        return _zip_elementwise(
            self.left.eval(env),
            self.right.eval(env),
            lambda a, b: alg.conj(a, alg.neg(b)),
        )


@dataclass(frozen=True)
class Transpose(RelExpr):
    operand: RelExpr

    def arity(self, env_arities: dict[str, int]) -> int:
        a = self.operand.arity(env_arities)
        if a != 2:
            raise TypeError("~ requires a binary relation")
        return 2

    def eval(self, env: Env) -> Matrix:
        m = self.operand.eval(env)
        return [[m[j][i] for j in range(env.n)] for i in range(env.n)]


@dataclass(frozen=True)
class Join(RelExpr):
    """Relational join ``left . right``."""

    left: RelExpr
    right: RelExpr

    def arity(self, env_arities: dict[str, int]) -> int:
        a = self.left.arity(env_arities)
        b = self.right.arity(env_arities)
        result = a + b - 2
        if result not in (1, 2):
            raise TypeError(f"join of arities {a} and {b} falls outside this fragment")
        return result

    def eval(self, env: Env):
        alg = env.algebra
        left = self.left.eval(env)
        right = self.right.eval(env)
        left_is_vec = not isinstance(left[0], list)
        right_is_vec = not isinstance(right[0], list)
        n = env.n
        if left_is_vec and not right_is_vec:
            # (vec . mat)[j] = ∨_i vec[i] ∧ mat[i][j]
            return [
                _fold_disj(alg, [alg.conj(left[i], right[i][j]) for i in range(n)])
                for j in range(n)
            ]
        if not left_is_vec and right_is_vec:
            # (mat . vec)[i] = ∨_j mat[i][j] ∧ vec[j]
            return [
                _fold_disj(alg, [alg.conj(left[i][j], right[j]) for j in range(n)])
                for i in range(n)
            ]
        if not left_is_vec and not right_is_vec:
            # boolean matrix product
            return [
                [
                    _fold_disj(alg, [alg.conj(left[i][k], right[k][j]) for k in range(n)])
                    for j in range(n)
                ]
                for i in range(n)
            ]
        raise TypeError("join of two sets is outside this fragment")


@dataclass(frozen=True)
class Product(RelExpr):
    """Cartesian product ``left -> right`` of two sets."""

    left: RelExpr
    right: RelExpr

    def arity(self, env_arities: dict[str, int]) -> int:
        a = self.left.arity(env_arities)
        b = self.right.arity(env_arities)
        if a != 1 or b != 1:
            raise TypeError("-> is supported for set × set only in this fragment")
        return 2

    def eval(self, env: Env) -> Matrix:
        alg = env.algebra
        left = self.left.eval(env)
        right = self.right.eval(env)
        return [[alg.conj(left[i], right[j]) for j in range(env.n)] for i in range(env.n)]


@dataclass(frozen=True)
class Closure(RelExpr):
    """Transitive closure ``^expr``."""

    operand: RelExpr

    def arity(self, env_arities: dict[str, int]) -> int:
        if self.operand.arity(env_arities) != 2:
            raise TypeError("^ requires a binary relation")
        return 2

    def eval(self, env: Env) -> Matrix:
        alg = env.algebra
        n = env.n
        current = self.operand.eval(env)
        # R⁺ = R ∪ R² ∪ … ∪ Rⁿ via iterated squaring-and-union:
        # acc ← acc ∪ acc·acc reaches the fixpoint in ⌈log₂ n⌉ steps.
        acc = [row[:] for row in current]
        steps = max(1, (n - 1).bit_length())
        for _ in range(steps):
            product = [
                [
                    _fold_disj(alg, [alg.conj(acc[i][k], acc[k][j]) for k in range(n)])
                    for j in range(n)
                ]
                for i in range(n)
            ]
            acc = [
                [alg.disj(acc[i][j], product[i][j]) for j in range(n)]
                for i in range(n)
            ]
        return acc


@dataclass(frozen=True)
class ReflClosure(RelExpr):
    """Reflexive transitive closure ``*expr``."""

    operand: RelExpr

    def arity(self, env_arities: dict[str, int]) -> int:
        if self.operand.arity(env_arities) != 2:
            raise TypeError("* requires a binary relation")
        return 2

    def eval(self, env: Env) -> Matrix:
        alg = env.algebra
        closed = Closure(self.operand).eval(env)
        return [
            [
                alg.disj(closed[i][j], alg.true()) if i == j else closed[i][j]
                for j in range(env.n)
            ]
            for i in range(env.n)
        ]


# ===========================================================================
# Formulas
# ===========================================================================


class RelFormula:
    """Base class of relational formulas."""

    def eval(self, env: Env):
        raise NotImplementedError

    def __and__(self, other: "RelFormula") -> "RelFormula":
        return AndF(self, other)

    def __or__(self, other: "RelFormula") -> "RelFormula":
        return OrF(self, other)

    def __invert__(self) -> "RelFormula":
        return NotF(self)


@dataclass(frozen=True)
class In(RelFormula):
    """Subset: every tuple of ``left`` is in ``right``."""

    left: RelExpr
    right: RelExpr

    def eval(self, env: Env):
        alg = env.algebra
        left = self.left.eval(env)
        right = self.right.eval(env)
        parts = [
            alg.implies(a, b) for a, b in zip(_flatten(left), _flatten(right))
        ]
        return _fold_conj(alg, parts)


@dataclass(frozen=True)
class Equal(RelFormula):
    left: RelExpr
    right: RelExpr

    def eval(self, env: Env):
        alg = env.algebra
        left = self.left.eval(env)
        right = self.right.eval(env)
        parts = [alg.iff(a, b) for a, b in zip(_flatten(left), _flatten(right))]
        return _fold_conj(alg, parts)


@dataclass(frozen=True)
class Some(RelFormula):
    """At least one tuple."""

    operand: RelExpr

    def eval(self, env: Env):
        return _fold_disj(env.algebra, _flatten(self.operand.eval(env)))


@dataclass(frozen=True)
class No(RelFormula):
    """No tuples."""

    operand: RelExpr

    def eval(self, env: Env):
        alg = env.algebra
        return alg.neg(_fold_disj(alg, _flatten(self.operand.eval(env))))


@dataclass(frozen=True)
class Lone(RelFormula):
    """At most one tuple (pairwise encoding)."""

    operand: RelExpr

    def eval(self, env: Env):
        alg = env.algebra
        cells = _flatten(self.operand.eval(env))
        parts = []
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                parts.append(alg.neg(alg.conj(cells[i], cells[j])))
        return _fold_conj(alg, parts)


@dataclass(frozen=True)
class One(RelFormula):
    """Exactly one tuple."""

    operand: RelExpr

    def eval(self, env: Env):
        alg = env.algebra
        return alg.conj(Some(self.operand).eval(env), Lone(self.operand).eval(env))


@dataclass(frozen=True)
class NotF(RelFormula):
    operand: RelFormula

    def eval(self, env: Env):
        return env.algebra.neg(self.operand.eval(env))


@dataclass(frozen=True)
class AndF(RelFormula):
    left: RelFormula
    right: RelFormula

    def eval(self, env: Env):
        return env.algebra.conj(self.left.eval(env), self.right.eval(env))


@dataclass(frozen=True)
class OrF(RelFormula):
    left: RelFormula
    right: RelFormula

    def eval(self, env: Env):
        return env.algebra.disj(self.left.eval(env), self.right.eval(env))


@dataclass(frozen=True)
class ImpliesF(RelFormula):
    left: RelFormula
    right: RelFormula

    def eval(self, env: Env):
        return env.algebra.implies(self.left.eval(env), self.right.eval(env))


@dataclass(frozen=True)
class IffF(RelFormula):
    left: RelFormula
    right: RelFormula

    def eval(self, env: Env):
        return env.algebra.iff(self.left.eval(env), self.right.eval(env))


@dataclass(frozen=True)
class All(RelFormula):
    """Universal quantification over atoms: ``all v₁, …, vₖ: S | body``."""

    variables: tuple[str, ...]
    body: RelFormula

    def eval(self, env: Env):
        alg = env.algebra
        parts = [self.body.eval(e) for e in _ground(env, self.variables)]
        return _fold_conj(alg, parts)


@dataclass(frozen=True)
class Exists(RelFormula):
    """Existential quantification: ``some v₁, …, vₖ: S | body``."""

    variables: tuple[str, ...]
    body: RelFormula

    def eval(self, env: Env):
        alg = env.algebra
        parts = [self.body.eval(e) for e in _ground(env, self.variables)]
        return _fold_disj(alg, parts)


# ===========================================================================
# helpers
# ===========================================================================


def _ground(env: Env, variables: Sequence[str]):
    """All environments extending ``env`` with atom bindings for ``variables``."""
    envs = [env]
    for name in variables:
        envs = [e.bound(name, atom) for e in envs for atom in range(env.n)]
    return envs


def _flatten(value) -> list:
    if value and isinstance(value[0], list):
        return [cell for row in value for cell in row]
    return list(value)


def _zip_elementwise(a, b, op):
    if a and isinstance(a[0], list):
        return [[op(x, y) for x, y in zip(ra, rb)] for ra, rb in zip(a, b)]
    return [op(x, y) for x, y in zip(a, b)]


def _fold_conj(alg: BoolAlgebra, parts: list):
    return alg.conj_all(parts)


def _fold_disj(alg: BoolAlgebra, parts: list):
    return alg.disj_all(parts)


# Convenience constructors for the common study idioms --------------------------------

S = SigRef()
r = RelRef("r")


def pair_in(rel: RelExpr, a: str, b: str) -> RelFormula:
    """``a->b in rel`` for quantified atom variables ``a``, ``b``."""
    return In(Product(VarRef(a), VarRef(b)), rel)


def var_eq(a: str, b: str) -> RelFormula:
    """``a = b`` for quantified atom variables."""
    return Equal(VarRef(a), VarRef(b))
