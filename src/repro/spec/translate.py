"""Bounded translation of relational formulas to propositional CNF.

This is the Alloy → Kodkod → CNF pipeline for the study's fragment: one
signature of ``n`` atoms and one binary relation ``r``.  The relation is
represented by ``n²`` *primary* propositional variables, numbered row-major:

    var(i, j) = i·n + j + 1          (DIMACS ids are 1-based)

so the flattened adjacency matrix used as the ML feature vector and the CNF
projection variables coincide index-for-index — the property the whole MCML
reduction leans on.

Grounding evaluates the relational AST with the symbolic boolean algebra; the
result is Tseitin-translated to CNF with the primary variables as the
counting projection.  Optional symmetry breaking conjoins the lex-leader
constraints *before* negation, so ``negate=True`` yields the complement of
the (possibly symmetry-constrained) solution set — exactly the ``¬φ`` MCML's
false-positive/true-negative counts need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.cnf import CNF
from repro.logic.formula import And, Formula, Not, Var
from repro.logic.tseitin import tseitin_cnf
from repro.spec.ast import Env, RelFormula, SymbolicAlgebra
from repro.spec.properties import Property
from repro.spec.symmetry import SymmetryBreaking


def var_id(i: int, j: int, n: int) -> int:
    """DIMACS variable for adjacency-matrix entry (i, j), row-major."""
    if not (0 <= i < n and 0 <= j < n):
        raise ValueError(f"({i}, {j}) out of range for scope {n}")
    return i * n + j + 1


def symbolic_relation(n: int) -> list[list[Formula]]:
    """The n×n matrix of primary variables representing ``r``."""
    return [[Var(var_id(i, j, n)) for j in range(n)] for i in range(n)]


def ground(formula: RelFormula, n: int, relation: str = "r") -> Formula:
    """Ground a relational formula at scope ``n`` into propositional logic."""
    env = Env(
        n=n,
        algebra=SymbolicAlgebra(),
        relations={relation: symbolic_relation(n)},
    )
    return formula.eval(env)


@dataclass
class RelationalProblem:
    """A grounded constraint problem, ready for solving or counting."""

    name: str
    scope: int
    formula: Formula  # propositional, over primary vars only (pre-Tseitin)
    cnf: CNF
    symmetry: SymmetryBreaking | None
    negated: bool

    @property
    def num_primary(self) -> int:
        return self.scope * self.scope

    @property
    def primary_vars(self) -> list[int]:
        """Projection variables in feature-vector order."""
        return list(range(1, self.num_primary + 1))

    def stats(self) -> dict[str, int]:
        """Size metadata as reported alongside Table 1."""
        return self.cnf.stats()


def translate(
    prop: Property | RelFormula,
    n: int,
    symmetry: SymmetryBreaking | None = None,
    negate: bool = False,
    relation: str = "r",
) -> RelationalProblem:
    """Compile a property (or raw relational formula) at scope ``n``.

    Parameters
    ----------
    symmetry:
        When given, lex-leader constraints are conjoined to the grounded
        property — Alloy's "symmetry breaking on" mode.
    negate:
        Negate the *property* before CNF conversion (the symmetry
        constraints, if any, stay positive).  Used by the faithful
        construction of MCML's ``fp``/``tn`` counting problems.
    """
    if isinstance(prop, Property):
        name = prop.name
        rel_formula = prop.formula
    else:
        name = type(prop).__name__
        rel_formula = prop

    grounded = ground(rel_formula, n, relation=relation)
    if negate:
        grounded = Not(grounded)
    # Symmetry-breaking constraints are conjoined *outside* the negation:
    # the paper evaluates both φ and ¬φ inside the symmetry-reduced space
    # ("symmetry breaking conditions are added so as to make distributions
    # of examples similar to the ones present in the training set", §5.1.2),
    # which is what makes a diagonal-checking Reflexive tree score a perfect
    # 1.0 precision in Table 3.
    if symmetry is not None:
        grounded = And(grounded, symmetry.formula(n))

    num_primary = n * n
    cnf = tseitin_cnf(grounded, num_input_vars=num_primary)
    return RelationalProblem(
        name=name if not negate else f"not({name})",
        scope=n,
        formula=grounded,
        cnf=cnf,
        symmetry=symmetry,
        negated=negate,
    )
